//! One TCP party: socket plumbing plus the `Comm` implementation.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::mpsc as std_mpsc;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use ca_codec::{Decode, Encode};
use ca_net::{Comm, FaultEstimate, Inbox, PartyId};
use ca_trace::{Event as TraceEvent, Histogram, NullSink, Record, TraceSink, ROOT_SCOPE};
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc as tokio_mpsc;

use crate::clock::{Clock, MonotonicClock};
use crate::frame::{FrameRef, LENGTH_PREFIX_LEN};
use crate::stats::{RuntimeStats, StatsInner};
use crate::{FaultPlan, Frame};

/// Errors from establishing or running a TCP party.
#[derive(Debug)]
pub enum RuntimeError {
    /// Socket-level failure during setup.
    Io(std::io::Error),
    /// The clique could not be completed within
    /// [`EstablishOpts::deadline`].
    EstablishTimeout {
        /// Peers still unconnected when the deadline fired.
        missing: Vec<usize>,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Io(e) => write!(f, "io error: {e}"),
            RuntimeError::EstablishTimeout { missing } => {
                write!(
                    f,
                    "clique establishment timed out; missing peers {missing:?}"
                )
            }
        }
    }
}

impl Error for RuntimeError {}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Io(e)
    }
}

/// Knobs for clique establishment and transport queue bounds.
///
/// The defaults suit localhost clusters and tests; deployments across
/// real networks should raise [`EstablishOpts::deadline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstablishOpts {
    /// Overall budget for establishing the full clique, measured on the
    /// injected [`Clock`]. Under a [`ManualClock`](crate::ManualClock)
    /// that never advances, establishment never times out.
    pub deadline: Duration,
    /// First dial-retry backoff; doubles per retry up to
    /// [`EstablishOpts::max_backoff`].
    pub initial_backoff: Duration,
    /// Ceiling on the dial-retry backoff.
    pub max_backoff: Duration,
    /// Capacity of each peer's outbound writer queue, in frames. A full
    /// queue means the peer cannot keep up with the synchronous schedule;
    /// the frame is shed and the peer disconnected (it was already
    /// violating the model).
    pub writer_queue_frames: usize,
    /// Capacity of the inbound event queue shared by all reader tasks.
    /// Protocol messages beyond it are shed; liveness events (end-of-round
    /// markers, disconnects) always get through.
    pub event_queue_depth: usize,
}

impl Default for EstablishOpts {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(10),
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(320),
            writer_queue_frames: 1024,
            event_queue_depth: 4096,
        }
    }
}

/// Cap on any single blocking socket wait during establishment, so the
/// deadline is re-checked at least this often.
const ESTABLISH_POLL: Duration = Duration::from_millis(250);

/// Events flowing from the socket tasks to the protocol thread.
#[derive(Debug)]
enum Event {
    Msg {
        from: usize,
        round: u64,
        payload: Bytes,
    },
    Eor {
        from: usize,
        round: u64,
    },
    /// Peer will send nothing more. `graceful` distinguishes a deliberate
    /// `Bye` (normal end of run — not an outage, not counted in
    /// [`RuntimeStats::peers_gone`]) from an EOF or undecodable frame
    /// (crash/misbehaviour — counted and traced as `PeerGone`).
    Gone {
        from: usize,
        graceful: bool,
    },
}

/// What a writer task puts on the wire.
#[derive(Debug)]
enum WriterItem {
    /// A protocol message: the payload [`Bytes`] are carried by reference
    /// to the writer task, which frames them in place — the send path
    /// never copies the payload into an owned [`Frame`].
    Msg {
        /// Round the message belongs to.
        round: u64,
        /// Protocol payload, shared with the caller's buffer.
        payload: Bytes,
    },
    /// A well-formed control frame: encoded and length-prefixed by the
    /// writer.
    Frame(Frame),
    /// Pre-framed raw bytes, used by fault injection to emit garbage
    /// that no honest writer would produce.
    Raw(Vec<u8>),
}

/// Message payloads at or below this size are copied into the header
/// buffer and shipped as one `write_all`; larger ones go out as two writes
/// (header, then the shared payload) so the copy disappears exactly where
/// it costs something.
const INLINE_WRITE_LIMIT: usize = 4096;

impl WriterItem {
    fn wire_len(&self) -> u64 {
        match self {
            WriterItem::Msg { round, payload } => {
                (LENGTH_PREFIX_LEN
                    + FrameRef::Msg {
                        round: *round,
                        payload,
                    }
                    .encoded_len()) as u64
            }
            WriterItem::Frame(f) => f.wire_len() as u64,
            WriterItem::Raw(buf) => buf.len() as u64,
        }
    }
}

/// A fully connected TCP party implementing [`Comm`].
///
/// Create one per process with [`TcpParty::establish`], then hand it to
/// protocol code. Round semantics: `next_round` flushes sends tagged with
/// the current round plus an end-of-round marker, then waits until every
/// live peer's marker arrives or `Δ` elapses.
///
/// # Crash tolerance
///
/// Peers whose stream ends abnormally (EOF without `Bye`, decode
/// failure) or whose bounded writer queue overflows are marked *gone*:
/// `next_round` never waits on them again and never again delivers from
/// them — from the protocol's view they are silent-byzantine, which the
/// model already tolerates for up to `t` parties. A deliberate `Bye`
/// (normal end of run) also stops the waiting but is not an outage: it
/// bumps no stat and traces no `PeerGone`, so fault-free runs report
/// zero gone peers however the final round's shutdowns interleave.
/// [`TcpParty::set_fault_plan`] scripts this party's own misbehavior for
/// tests; [`TcpParty::stats`] exposes what the transport absorbed.
pub struct TcpParty {
    n: usize,
    t: usize,
    me: PartyId,
    delta: Duration,
    round: u64,
    pending: Vec<(PartyId, Bytes)>,
    scopes: Vec<String>,
    /// Sends frames to the per-peer writer tasks (bounded queues).
    writers: Vec<Option<tokio_mpsc::Sender<WriterItem>>>,
    /// Inbound events from all reader tasks (bounded; see
    /// [`EstablishOpts::event_queue_depth`]).
    events: std_mpsc::Receiver<Event>,
    /// Messages received for rounds we have not reached yet.
    future_msgs: BTreeMap<u64, Vec<(usize, Bytes)>>,
    /// Time source for the Δ deadline; injectable for tests.
    clock: Box<dyn Clock>,
    /// Highest EOR round seen per peer.
    eor: Vec<u64>,
    /// Peers whose stream ended or who were cut off.
    gone: Vec<bool>,
    /// Subset of `gone` cut off for active misbehavior (queue overflow)
    /// rather than mere silence; feeds [`Comm::fault_estimate`].
    suspected: Vec<bool>,
    /// Scripted misbehavior for this party (empty by default).
    fault: FaultPlan,
    /// Set once the fault plan's crash round is reached.
    crashed: bool,
    /// Transport counters shared with the socket tasks.
    stats: Arc<StatsInner>,
    /// Trace destination ([`NullSink`] unless [`TcpParty::set_trace`]).
    sink: Arc<dyn TraceSink>,
    /// Observed `next_round` barrier latency in microseconds (measured
    /// with the injected [`Clock`], so deterministic under a manual
    /// clock).
    round_latency_us: Histogram,
    /// Keeps the tokio runtime driving the sockets alive.
    _runtime: tokio::runtime::Runtime,
}

impl TcpParty {
    /// Binds `addrs[me]`, connects to all peers, and returns a ready
    /// transport. Every party must call this with the same address list;
    /// the function blocks until the clique is established or the
    /// default [`EstablishOpts::deadline`] expires.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Io`] if sockets cannot be bound,
    /// [`RuntimeError::EstablishTimeout`] if some peer never came up.
    pub fn establish(
        me: PartyId,
        addrs: &[SocketAddr],
        delta: Duration,
    ) -> Result<Self, RuntimeError> {
        Self::establish_with(
            me,
            addrs,
            delta,
            &EstablishOpts::default(),
            Box::new(MonotonicClock::default()),
        )
    }

    /// [`TcpParty::establish`] with an explicit time source, so tests can
    /// drive the Δ deadline with a [`ManualClock`](crate::ManualClock).
    ///
    /// # Errors
    ///
    /// As for [`TcpParty::establish`].
    pub fn establish_with_clock(
        me: PartyId,
        addrs: &[SocketAddr],
        delta: Duration,
        clock: Box<dyn Clock>,
    ) -> Result<Self, RuntimeError> {
        Self::establish_with(me, addrs, delta, &EstablishOpts::default(), clock)
    }

    /// [`TcpParty::establish`] with explicit establishment options and
    /// time source.
    ///
    /// # Errors
    ///
    /// As for [`TcpParty::establish`].
    pub fn establish_with(
        me: PartyId,
        addrs: &[SocketAddr],
        delta: Duration,
        opts: &EstablishOpts,
        clock: Box<dyn Clock>,
    ) -> Result<Self, RuntimeError> {
        let n = addrs.len();
        let t = ca_net::max_faults(n);
        let stats = Arc::new(StatsInner::default());
        let runtime = tokio::runtime::Builder::new_multi_thread()
            .worker_threads(2)
            .enable_all()
            .build()?;
        let (event_tx, event_rx) = std_mpsc::sync_channel::<Event>(opts.event_queue_depth);

        let streams = runtime.block_on(establish_clique(me, addrs, opts, &*clock, &stats))?;

        let mut writers: Vec<Option<tokio_mpsc::Sender<WriterItem>>> =
            (0..n).map(|_| None).collect();
        for (peer, stream) in streams {
            let (mut read_half, mut write_half) = stream.into_split();
            let (tx, mut rx) = tokio_mpsc::channel::<WriterItem>(opts.writer_queue_frames);
            writers[peer] = Some(tx);

            // Writer task: frame + length-prefix every outgoing message.
            // When the sender side is dropped (normal exit or injected
            // crash) the queue drains FIFO, then the write side shuts
            // down — peers observe EOF only after in-flight frames land.
            runtime.spawn(async move {
                while let Some(item) = rx.recv().await {
                    let result = match item {
                        WriterItem::Msg { round, payload } => {
                            // Frame in place: prefix + tag + round varint +
                            // payload length varint, then the shared payload.
                            // Small payloads are inlined into one write;
                            // large ones go out without ever being copied.
                            let body_len = FrameRef::Msg {
                                round,
                                payload: &payload,
                            }
                            .encoded_len();
                            // Header ≤ prefix + tag + two max varints; the
                            // payload is appended only when small enough to
                            // inline, so the buffer is hard-capped.
                            let mut head = ca_codec::Writer::with_capacity(
                                (LENGTH_PREFIX_LEN + body_len)
                                    .min(LENGTH_PREFIX_LEN + 21 + INLINE_WRITE_LIMIT),
                            );
                            head.put_raw(&(body_len as u32).to_be_bytes());
                            head.put_u8(1);
                            head.put_varint(round);
                            head.put_varint(payload.len() as u64);
                            if payload.len() <= INLINE_WRITE_LIMIT {
                                head.put_raw(&payload);
                                write_half.write_all(head.as_slice()).await
                            } else {
                                match write_half.write_all(head.as_slice()).await {
                                    Ok(()) => write_half.write_all(&payload).await,
                                    err => err,
                                }
                            }
                        }
                        WriterItem::Frame(frame) => {
                            let body = frame.encode_to_vec();
                            let mut buf = (body.len() as u32).to_be_bytes().to_vec();
                            buf.extend_from_slice(&body);
                            write_half.write_all(&buf).await
                        }
                        WriterItem::Raw(buf) => write_half.write_all(&buf).await,
                    };
                    if result.is_err() {
                        break;
                    }
                }
                let _ = write_half.shutdown().await;
            });

            // Reader task: decode frames, forward as events. Protocol
            // messages are shed if the event queue is full; liveness
            // events (Eor/Gone) block instead so they are never lost.
            let event_tx = event_tx.clone();
            let stats = Arc::clone(&stats);
            runtime.spawn(async move {
                let mut graceful = false;
                loop {
                    let mut len_buf = [0u8; 4];
                    if read_half.read_exact(&mut len_buf).await.is_err() {
                        break;
                    }
                    // Validate the claimed length BEFORE sizing the buffer:
                    // a byzantine peer announcing a 4 GiB frame is dropped
                    // without allocating anything.
                    let Ok(len) = crate::frame::validate_frame_len(u32::from_be_bytes(len_buf))
                    else {
                        break;
                    };
                    let mut body = vec![0u8; len];
                    if read_half.read_exact(&mut body).await.is_err() {
                        break;
                    }
                    // The receive buffer becomes the backing store for the
                    // delivered payload: decode borrows from `body`, and the
                    // Msg payload is re-anchored into the shared allocation
                    // with `slice_ref` — no per-frame payload copy.
                    let body = Bytes::from(body);
                    match FrameRef::decode_from_slice(&body) {
                        Ok(FrameRef::Msg { round, payload }) => {
                            let payload = body.slice_ref(payload);
                            match event_tx.try_send(Event::Msg {
                                from: peer,
                                round,
                                payload,
                            }) {
                                Ok(()) => {}
                                Err(std_mpsc::TrySendError::Full(_)) => {
                                    stats.events_shed.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(std_mpsc::TrySendError::Disconnected(_)) => break,
                            }
                        }
                        Ok(FrameRef::Eor { round }) => {
                            if event_tx.send(Event::Eor { from: peer, round }).is_err() {
                                break;
                            }
                        }
                        Ok(FrameRef::Bye) => {
                            graceful = true;
                            break;
                        }
                        Err(_) => break,
                        Ok(FrameRef::Hello { .. }) => continue,
                    }
                }
                let _ = event_tx.send(Event::Gone {
                    from: peer,
                    graceful,
                });
            });
        }

        Ok(Self {
            n,
            t,
            me,
            delta,
            round: 0,
            pending: Vec::new(),
            scopes: Vec::new(),
            writers,
            events: event_rx,
            future_msgs: BTreeMap::new(),
            clock,
            eor: vec![0; n],
            gone: {
                let mut g = vec![false; n];
                g[me.index()] = true; // never wait on ourselves
                g
            },
            suspected: vec![false; n],
            fault: FaultPlan::default(),
            crashed: false,
            stats,
            sink: Arc::new(NullSink),
            round_latency_us: Histogram::new(),
            _runtime: runtime,
        })
    }

    /// Attaches a trace sink. Unlike the simulator (which interleaves all
    /// parties into one stream), a TCP party records only its own
    /// timeline; pair one [`ca_trace::JsonlSink`] per party (see
    /// `TcpCluster::with_trace_dir`).
    pub fn set_trace(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = sink;
    }

    /// Installs a scripted fault schedule for this party (tests and
    /// chaos experiments). Takes effect from the next round.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// Snapshot of this party's transport counters.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.stats.snapshot()
    }

    /// Rounds completed so far (the round number of the last
    /// `next_round` call).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Barrier latency observed by this party's `next_round` calls, in
    /// microseconds.
    pub fn round_latency_us(&self) -> &Histogram {
        &self.round_latency_us
    }

    fn peer_done(&self, peer: usize, round: u64) -> bool {
        self.gone[peer] || self.eor[peer] >= round
    }

    fn scope_path(&self) -> String {
        if self.scopes.is_empty() {
            ROOT_SCOPE.to_owned()
        } else {
            self.scopes.join("/")
        }
    }

    fn emit(&self, event: TraceEvent) {
        self.sink.record(&Record {
            party: Some(self.me.index() as u64),
            round: self.round,
            scope: self.scope_path(),
            event,
        });
    }

    /// Marks `peer` silent-byzantine (idempotent), bumping the stat and
    /// tracing the observation.
    fn mark_gone(&mut self, peer: usize, reason: &str) {
        if peer == self.me.index() || self.gone[peer] {
            return;
        }
        self.gone[peer] = true;
        self.suspected[peer] = reason == "overflow";
        self.stats.peers_gone.fetch_add(1, Ordering::Relaxed);
        if self.sink.enabled() {
            self.emit(TraceEvent::PeerGone {
                peer: peer as u64,
                reason: reason.to_owned(),
            });
        }
    }

    /// Hands `item` to `to`'s writer queue. A full queue means the peer
    /// is not consuming at the synchronous schedule's pace: the frame is
    /// shed and the peer disconnected rather than letting its backlog
    /// grow without bound.
    fn enqueue(&mut self, to: usize, item: WriterItem) {
        let wire_len = item.wire_len();
        let Some(tx) = self.writers[to].clone() else {
            return;
        };
        match tx.try_send(item) {
            Ok(()) => {
                self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .wire_bytes_sent
                    .fetch_add(wire_len, Ordering::Relaxed);
            }
            Err(tokio_mpsc::error::TrySendError::Full(_)) => {
                self.stats.frames_shed.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .overflow_disconnects
                    .fetch_add(1, Ordering::Relaxed);
                self.writers[to] = None;
                self.mark_gone(to, "overflow");
            }
            Err(tokio_mpsc::error::TrySendError::Closed(_)) => {
                self.writers[to] = None;
                self.mark_gone(to, "writer-closed");
            }
        }
    }

    /// Executes the crash fault: drop every writer sender so the queues
    /// drain and the write sides shut down (peers see EOF), and go
    /// silent. No `Bye` is sent — this models a process kill, not a
    /// graceful exit.
    fn crash(&mut self) {
        self.crashed = true;
        self.pending.clear();
        for w in &mut self.writers {
            *w = None;
        }
    }

    // -- Event-driven (async) access, used by `crate::async_driver` ------
    //
    // The round-based `Comm` surface above buffers sends until the next
    // barrier; the asynchronous driver instead ships frames immediately
    // and polls inbound events one at a time, with no Δ anywhere.

    /// Reads the injected clock (the async driver's only time source).
    pub(crate) fn clock_now(&self) -> Duration {
        self.clock.now()
    }

    /// A copy of the scripted fault plan (the async driver applies it
    /// itself, keyed by delivered-message count instead of rounds).
    pub(crate) fn fault_plan(&self) -> FaultPlan {
        self.fault.clone()
    }

    /// Whether the crash fault has been executed.
    pub(crate) fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Executes the crash fault now (async-driver entry point).
    pub(crate) fn crash_now(&mut self) {
        self.crash();
    }

    /// Ships `payload` to `to` immediately as a `Frame::Msg` (no barrier;
    /// the round tag is meaningless to an async receiver and carries the
    /// current counter only for wire compatibility), tracing the send.
    pub(crate) fn send_now(&mut self, to: usize, payload: Bytes) {
        if self.crashed {
            return;
        }
        if self.sink.enabled() {
            self.emit(TraceEvent::Send {
                to: to as u64,
                bytes: payload.len() as u64,
            });
        }
        self.enqueue(
            to,
            WriterItem::Msg {
                round: self.round,
                payload,
            },
        );
    }

    /// Ships one undecodable frame to every peer (the garbage fault on
    /// the async path; honest receivers drop the connection on decode
    /// failure).
    pub(crate) fn send_garbage_now(&mut self) {
        let garbage: Vec<u8> = vec![0, 0, 0, 1, 0xFF];
        for peer in 0..self.n {
            self.enqueue(peer, WriterItem::Raw(garbage.clone()));
        }
    }

    /// Waits up to `timeout` for one inbound observation. Liveness
    /// bookkeeping (end-of-round markers from sync peers, disconnects) is
    /// absorbed internally and reported as [`Polled::Housekeeping`] so
    /// callers simply poll again.
    pub(crate) fn poll_event(&mut self, timeout: Duration) -> Polled {
        match self.events.recv_timeout(timeout) {
            Ok(Event::Msg { from, payload, .. }) => Polled::Msg { from, payload },
            Ok(Event::Eor { from, round }) => {
                self.eor[from] = self.eor[from].max(round);
                Polled::Housekeeping
            }
            Ok(Event::Gone { from, graceful }) => {
                if graceful {
                    if from != self.me.index() {
                        self.gone[from] = true;
                    }
                } else {
                    self.mark_gone(from, "eof");
                }
                Polled::Housekeeping
            }
            Err(std_mpsc::RecvTimeoutError::Timeout) => Polled::Quiet,
            Err(std_mpsc::RecvTimeoutError::Disconnected) => Polled::Closed,
        }
    }
}

/// One observation from [`TcpParty::poll_event`].
#[derive(Debug)]
pub(crate) enum Polled {
    /// A protocol message arrived (its round tag, if any, is ignored —
    /// async protocols sequence themselves by message content).
    Msg {
        /// Sender index.
        from: usize,
        /// Opaque protocol bytes.
        payload: Bytes,
    },
    /// Bookkeeping was absorbed; poll again.
    Housekeeping,
    /// Nothing arrived within the timeout.
    Quiet,
    /// The event channel closed (socket tasks are gone).
    Closed,
}

impl Comm for TcpParty {
    fn n(&self) -> usize {
        self.n
    }

    fn t(&self) -> usize {
        self.t
    }

    fn me(&self) -> PartyId {
        self.me
    }

    fn send_bytes(&mut self, to: PartyId, payload: Bytes) {
        assert!(to.index() < self.n, "send to nonexistent {to}");
        self.pending.push((to, payload));
    }

    fn next_round(&mut self) -> Inbox {
        self.round += 1;
        let round = self.round;
        if self.crashed {
            // A crashed party neither sends nor observes anything; calls
            // keep returning empty so driver loops above stay simple.
            self.pending.clear();
            return Inbox::with_parties(self.n);
        }
        if self.fault.is_crash_round(round) {
            if self.sink.enabled() {
                self.emit(TraceEvent::RoundStart);
                self.emit(TraceEvent::FaultInjected {
                    strategy: "crash".to_owned(),
                });
                self.emit(TraceEvent::RoundEnd);
            }
            self.crash();
            return Inbox::with_parties(self.n);
        }
        let tracing = self.sink.enabled();
        if tracing {
            self.emit(TraceEvent::RoundStart);
        }
        let stalled = self.fault.stalls_in(round);
        let slow = self.fault.skips_drain_in(round);
        if tracing && stalled {
            self.emit(TraceEvent::FaultInjected {
                strategy: "stall".to_owned(),
            });
        }
        if tracing && slow {
            self.emit(TraceEvent::FaultInjected {
                strategy: "slow-reader".to_owned(),
            });
        }
        if self.fault.emits_garbage_in(round) {
            if tracing {
                self.emit(TraceEvent::FaultInjected {
                    strategy: "garbage".to_owned(),
                });
            }
            // One-byte body holding an invalid frame tag: passes the
            // length check, fails decode, gets us dropped by the peer.
            let garbage: Vec<u8> = vec![0, 0, 0, 1, 0xFF];
            for peer in 0..self.n {
                self.enqueue(peer, WriterItem::Raw(garbage.clone()));
            }
        }
        let wait_start = self.clock.now();
        let mut inbox = Inbox::with_parties(self.n);

        // Flush sends (self-delivery is local).
        for (to, payload) in std::mem::take(&mut self.pending) {
            if to == self.me {
                inbox.push(self.me, payload);
                continue;
            }
            if stalled {
                // A stalled party's messages missed their synchronous
                // window; sending them late would only get them dropped.
                continue;
            }
            if tracing {
                self.emit(TraceEvent::Send {
                    to: to.index() as u64,
                    bytes: payload.len() as u64,
                });
            }
            self.enqueue(to.index(), WriterItem::Msg { round, payload });
        }
        if !stalled {
            for peer in 0..self.n {
                self.enqueue(peer, WriterItem::Frame(Frame::Eor { round }));
            }
        }

        // Adopt any messages that arrived early for this round.
        if let Some(early) = self.future_msgs.remove(&round) {
            for (from, payload) in early {
                inbox.push(PartyId(from), payload);
            }
        }

        // Wait for all live peers' markers, at most Δ. A slow-reader
        // fault skips the drain; this round's messages are consumed next
        // round and discarded as stale.
        if !slow {
            let deadline = self.clock.now().saturating_add(self.delta);
            while (0..self.n).any(|p| !self.peer_done(p, round)) {
                let now = self.clock.now();
                let Some(budget) = deadline.checked_sub(now).filter(|d| !d.is_zero()) else {
                    break;
                };
                match self.events.recv_timeout(budget) {
                    Ok(Event::Msg {
                        from,
                        round: msg_round,
                        payload,
                    }) => {
                        if msg_round == round {
                            inbox.push(PartyId(from), payload);
                        } else if msg_round > round {
                            self.future_msgs
                                .entry(msg_round)
                                .or_default()
                                .push((from, payload));
                        }
                        // Late messages (msg_round < round) missed their Δ: drop.
                    }
                    Ok(Event::Eor { from, round: r }) => {
                        self.eor[from] = self.eor[from].max(r);
                    }
                    Ok(Event::Gone { from, graceful }) => {
                        if graceful {
                            // A deliberate Bye: the peer finished its run.
                            // Stop waiting on it, but this is not an
                            // outage — no stat bump, no PeerGone record
                            // (which would also race with round timing).
                            if from != self.me.index() {
                                self.gone[from] = true;
                            }
                        } else {
                            self.mark_gone(from, "eof");
                        }
                    }
                    Err(std_mpsc::RecvTimeoutError::Timeout) => break,
                    Err(std_mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        let waited = self.clock.now().saturating_sub(wait_start);
        self.round_latency_us
            .record(u64::try_from(waited.as_micros()).unwrap_or(u64::MAX));
        if tracing {
            for from in 0..self.n {
                let sizes: Vec<u64> = inbox
                    .raw_from(PartyId(from))
                    .iter()
                    .map(|raw| raw.len() as u64)
                    .collect();
                for bytes in sizes {
                    self.emit(TraceEvent::Deliver {
                        from: from as u64,
                        bytes,
                    });
                }
            }
            self.emit(TraceEvent::RoundEnd);
        }
        inbox
    }

    fn push_scope(&mut self, name: &str) {
        self.scopes.push(name.to_owned());
        if self.sink.enabled() {
            self.emit(TraceEvent::ScopeEnter {
                name: name.to_owned(),
            });
        }
    }

    fn pop_scope(&mut self) {
        let popped = self.scopes.pop();
        if self.sink.enabled() {
            if let Some(name) = popped {
                self.emit(TraceEvent::ScopeExit { name });
            }
        }
    }

    fn silent_parties(&self) -> Vec<PartyId> {
        (0..self.n)
            .filter(|&p| p != self.me.index() && self.gone[p])
            .map(PartyId)
            .collect()
    }

    fn fault_estimate(&self) -> FaultEstimate {
        let mut est = FaultEstimate::default();
        for p in 0..self.n {
            if p == self.me.index() || !self.gone[p] {
                continue;
            }
            if self.suspected[p] {
                est.suspected += 1;
            } else {
                est.silent += 1;
            }
        }
        est
    }

    fn trace_enabled(&self) -> bool {
        self.sink.enabled()
    }

    fn trace(&mut self, event: ca_trace::Event) {
        if self.sink.enabled() {
            self.emit(event);
        }
    }
}

impl Drop for TcpParty {
    fn drop(&mut self) {
        // A crashed party's writers are already gone; nothing is sent.
        for tx in self.writers.iter().flatten() {
            let _ = tx.try_send(WriterItem::Frame(Frame::Bye));
        }
        self.sink.flush();
    }
}

/// Establishes one TCP stream per peer: lower-indexed parties accept,
/// higher-indexed parties dial (so each pair has exactly one stream).
///
/// Hardened against a hostile or flaky network: dials retry with bounded
/// exponential backoff under an overall deadline, and the accept loop
/// drops (rather than aborts on) connections with malformed, impersonated,
/// or duplicate handshakes — a port scanner cannot consume a peer's slot.
async fn establish_clique(
    me: PartyId,
    addrs: &[SocketAddr],
    opts: &EstablishOpts,
    clock: &dyn Clock,
    stats: &StatsInner,
) -> Result<Vec<(usize, TcpStream)>, RuntimeError> {
    let n = addrs.len();
    let listener = TcpListener::bind(addrs[me.index()]).await?;
    let deadline = clock.now().saturating_add(opts.deadline);
    // ca-lint: allow(unbounded-alloc) — capacity is the locally configured party count
    let mut streams: Vec<(usize, TcpStream)> = Vec::with_capacity(n.saturating_sub(1));

    // Dial everyone below us, retrying with backoff while they come up.
    for (peer, addr) in addrs.iter().enumerate().take(me.index()) {
        let mut backoff = opts.initial_backoff;
        let stream = loop {
            let Some(remaining) = remaining_budget(deadline, clock) else {
                return Err(RuntimeError::EstablishTimeout {
                    missing: vec![peer],
                });
            };
            match TcpStream::connect_timeout(*addr, remaining.min(ESTABLISH_POLL)).await {
                Ok(s) => break s,
                Err(_) => {
                    stats.dial_retries.fetch_add(1, Ordering::Relaxed);
                    tokio::time::sleep(backoff.min(ESTABLISH_POLL)).await;
                    backoff = backoff.saturating_mul(2).min(opts.max_backoff);
                }
            }
        };
        stream.set_nodelay(true).ok();
        let mut stream = stream;
        let hello = Frame::Hello {
            from: me.index() as u32,
        }
        .encode_to_vec();
        let mut buf = (hello.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&hello);
        stream.write_all(&buf).await?;
        streams.push((peer, stream));
    }

    // Accept everyone above us, dropping strays until the deadline.
    let expected = n - me.index() - 1;
    let mut taken = vec![false; n];
    let mut accepted = 0usize;
    while accepted < expected {
        let Some(remaining) = remaining_budget(deadline, clock) else {
            let missing: Vec<usize> = (me.index() + 1..n).filter(|&p| !taken[p]).collect();
            return Err(RuntimeError::EstablishTimeout { missing });
        };
        let (mut stream, _) = match listener.accept_timeout(remaining.min(ESTABLISH_POLL)).await {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => continue,
            Err(e) => return Err(e.into()),
        };
        stream.set_nodelay(true).ok();
        // A connection that never completes its handshake must not block
        // the accept loop: bound the hello read, then reject on timeout.
        stream
            .set_read_timeout(Some(remaining.min(ESTABLISH_POLL)))
            .ok();
        match read_hello(&mut stream).await {
            // The accept side only ever hears from higher-indexed
            // parties (they dial us), so a hello claiming our own index
            // or lower is an impersonation attempt; a repeated index is
            // a duplicate. Both are dropped, never trusted.
            Some(from) if from > me.index() && from < n && !taken[from] => {
                stream.set_read_timeout(None).ok();
                taken[from] = true;
                streams.push((from, stream));
                accepted += 1;
            }
            _ => {
                stats.handshake_rejects.fetch_add(1, Ordering::Relaxed);
                // Drop the stray and keep accepting.
            }
        }
    }

    Ok(streams)
}

/// Time left before `deadline`, or `None` when it has passed.
fn remaining_budget(deadline: Duration, clock: &dyn Clock) -> Option<Duration> {
    deadline.checked_sub(clock.now()).filter(|d| !d.is_zero())
}

/// Reads and decodes one handshake frame; `None` on anything malformed.
async fn read_hello(stream: &mut TcpStream) -> Option<usize> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).await.ok()?;
    // Validate the claimed length BEFORE sizing the buffer, same as the
    // round-frame reader — a stray connection gets no allocation budget.
    let len = crate::frame::validate_hello_len(u32::from_be_bytes(len_buf)).ok()?;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).await.ok()?;
    match Frame::decode_from_slice(&body) {
        Ok(Frame::Hello { from }) => Some(from as usize),
        _ => None,
    }
}
