//! Transport-level counters for crash-fault accounting.
//!
//! The protocol model already absorbs crashed peers (they become
//! silent-byzantine), so nothing above the `Comm` seam needs these
//! numbers to stay correct. They exist so deployments and experiments
//! can *see* what the transport absorbed: how many frames were shed to
//! bounded queues, how many peers went silent, how hard establishment
//! had to retry.

use std::sync::atomic::{AtomicU64, Ordering};

/// Point-in-time snapshot of one party's transport counters.
///
/// Obtained from [`TcpParty::stats`](crate::TcpParty::stats); all fields
/// are cumulative since establishment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Frames successfully handed to a writer queue (control frames
    /// included).
    pub frames_sent: u64,
    /// Total wire bytes of those frames (length prefix + encoded body).
    pub wire_bytes_sent: u64,
    /// Outbound frames dropped because a peer's bounded writer queue was
    /// full. Each shed frame also disconnects that peer (see
    /// [`RuntimeStats::overflow_disconnects`]).
    pub frames_shed: u64,
    /// Inbound protocol messages dropped because the bounded event queue
    /// was full. Liveness events (end-of-round markers, disconnects) are
    /// never shed.
    pub events_shed: u64,
    /// Peers this party stopped listening to (EOF, decode failure, or
    /// queue overflow). Counted once per peer.
    pub peers_gone: u64,
    /// Peers disconnected because their writer queue overflowed.
    pub overflow_disconnects: u64,
    /// Inbound connections dropped during establishment for a bad
    /// handshake: undecodable hello, out-of-range or impersonated index,
    /// or a duplicate of an already-connected peer.
    pub handshake_rejects: u64,
    /// Failed dial attempts that were retried with backoff during
    /// establishment.
    pub dial_retries: u64,
}

/// Shared mutable counters behind [`RuntimeStats`]: one instance per
/// party, updated from the protocol thread, the reader tasks, and
/// establishment.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub frames_sent: AtomicU64,
    pub wire_bytes_sent: AtomicU64,
    pub frames_shed: AtomicU64,
    pub events_shed: AtomicU64,
    pub peers_gone: AtomicU64,
    pub overflow_disconnects: AtomicU64,
    pub handshake_rejects: AtomicU64,
    pub dial_retries: AtomicU64,
}

impl StatsInner {
    /// Copies the counters out. Individually atomic, not a consistent
    /// cross-field snapshot — fine for accounting.
    pub fn snapshot(&self) -> RuntimeStats {
        RuntimeStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            wire_bytes_sent: self.wire_bytes_sent.load(Ordering::Relaxed),
            frames_shed: self.frames_shed.load(Ordering::Relaxed),
            events_shed: self.events_shed.load(Ordering::Relaxed),
            peers_gone: self.peers_gone.load(Ordering::Relaxed),
            overflow_disconnects: self.overflow_disconnects.load(Ordering::Relaxed),
            handshake_rejects: self.handshake_rejects.load(Ordering::Relaxed),
            dial_retries: self.dial_retries.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let inner = StatsInner::default();
        assert_eq!(inner.snapshot(), RuntimeStats::default());
        inner.frames_sent.fetch_add(3, Ordering::Relaxed);
        inner.wire_bytes_sent.fetch_add(120, Ordering::Relaxed);
        inner.peers_gone.fetch_add(1, Ordering::Relaxed);
        let snap = inner.snapshot();
        assert_eq!(snap.frames_sent, 3);
        assert_eq!(snap.wire_bytes_sent, 120);
        assert_eq!(snap.peers_gone, 1);
        assert_eq!(snap.frames_shed, 0);
    }
}
