//! Single-process convenience cluster: `n` TCP parties on localhost.

use std::collections::BTreeMap;
use std::fmt;
use std::net::{SocketAddr, TcpListener as StdTcpListener};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ca_async::AsyncProtocol;
use ca_net::{Comm, PartyId};
use ca_trace::JsonlSink;

use crate::party::EstablishOpts;
use crate::stats::RuntimeStats;
use crate::{Clock, FaultPlan, MonotonicClock, RuntimeError, TcpParty};

/// Per-party factory for injectable time sources (index → clock).
type ClockFactory = Arc<dyn Fn(usize) -> Box<dyn Clock> + Send + Sync>;

/// Runs `n` parties over real localhost TCP sockets, each on its own
/// thread, and collects their outputs.
///
/// This is the deployment demo and the simulator-equivalence fixture; for
/// measured experiments use [`ca_net::Sim`]. Crash-tolerance experiments
/// script faults with [`TcpCluster::with_fault_plan`] and read the
/// per-party transport counters from [`TcpCluster::run_report`].
pub struct TcpCluster {
    n: usize,
    delta: Duration,
    trace_dir: Option<PathBuf>,
    opts: EstablishOpts,
    fault_plans: BTreeMap<usize, FaultPlan>,
    clock_factory: Option<ClockFactory>,
}

impl fmt::Debug for TcpCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpCluster")
            .field("n", &self.n)
            .field("delta", &self.delta)
            .field("trace_dir", &self.trace_dir)
            .field("opts", &self.opts)
            .field("fault_plans", &self.fault_plans)
            .field("clock_factory", &self.clock_factory.is_some())
            .finish()
    }
}

/// What [`TcpCluster::run_report`] returns: outputs plus per-party
/// transport accounting, all in party order.
#[derive(Debug)]
pub struct ClusterReport<O> {
    /// Each party's protocol output.
    pub outputs: Vec<O>,
    /// Each party's transport counters at protocol exit.
    pub stats: Vec<RuntimeStats>,
    /// Rounds each party completed (crashed parties keep counting calls,
    /// so these are equal for protocols that call `next_round` in
    /// lock-step).
    pub rounds: Vec<u64>,
}

impl TcpCluster {
    /// A cluster of `n` parties with `Δ = 500 ms`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one party");
        Self {
            n,
            delta: Duration::from_millis(500),
            trace_dir: None,
            opts: EstablishOpts::default(),
            fault_plans: BTreeMap::new(),
            clock_factory: None,
        }
    }

    /// Overrides the synchrony bound `Δ`.
    pub fn with_delta(mut self, delta: Duration) -> Self {
        self.delta = delta;
        self
    }

    /// Overrides establishment deadlines, backoff, and queue bounds.
    pub fn with_establish_opts(mut self, opts: EstablishOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Scripts transport faults for `party` (see [`FaultPlan`]). The
    /// other parties run fault-free.
    pub fn with_fault_plan(mut self, party: usize, plan: FaultPlan) -> Self {
        assert!(party < self.n, "fault plan for nonexistent party {party}");
        self.fault_plans.insert(party, plan);
        self
    }

    /// Gives each party a clock built by `factory` (index → clock)
    /// instead of the default wall clock; chaos tests pass
    /// [`ManualClock`](crate::ManualClock) handles so no code path
    /// depends on real time.
    pub fn with_clock_factory(
        mut self,
        factory: impl Fn(usize) -> Box<dyn Clock> + Send + Sync + 'static,
    ) -> Self {
        self.clock_factory = Some(Arc::new(factory));
        self
    }

    /// Records each party's timeline to `dir/party_<i>.jsonl` (the
    /// directory is created on run). TCP parties do not share a clock, so
    /// per-party files — one self-consistent timeline each — are the
    /// honest representation; use `ca-trace report` on any one of them.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Establishes the clique and runs `party` everywhere, returning
    /// outputs in party order.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] if sockets cannot be set up.
    pub fn run<O, F>(self, party: F) -> Result<Vec<O>, RuntimeError>
    where
        O: Send,
        F: Fn(&mut dyn Comm, PartyId) -> O + Send + Sync,
    {
        self.run_report(party).map(|report| report.outputs)
    }

    /// [`TcpCluster::run`] plus per-party transport accounting.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] if sockets cannot be set up.
    pub fn run_report<O, F>(self, party: F) -> Result<ClusterReport<O>, RuntimeError>
    where
        O: Send,
        F: Fn(&mut dyn Comm, PartyId) -> O + Send + Sync,
    {
        self.run_parties(|comm, id| party(comm, id))
    }

    /// Runs an **event-driven** (asynchronous) protocol on every party:
    /// no round barriers, no Δ — each instance advances as messages
    /// arrive, via [`run_async_party`](crate::run_async_party). `make`
    /// builds party `i`'s protocol instance; [`FaultPlan`]s installed
    /// with [`TcpCluster::with_fault_plan`] apply, reinterpreted per the
    /// async driver's documentation (plan rounds = delivered-message
    /// counts). The configured Δ is irrelevant on this path.
    ///
    /// Returns each party's decision (`None` for parties that crashed
    /// under their plan or hit [`AsyncTcpOpts::deadline`]), in party
    /// order.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] if sockets cannot be set up.
    pub fn run_async<P, F>(
        self,
        opts: &crate::AsyncTcpOpts,
        make: F,
    ) -> Result<Vec<Option<P::Output>>, RuntimeError>
    where
        P: AsyncProtocol,
        P::Output: Send,
        P::Output: std::fmt::Display,
        F: Fn(PartyId) -> P + Send + Sync,
    {
        self.run_parties(|party, id| crate::run_async_party(party, make(id), opts))
            .map(|report| report.outputs)
    }

    /// Shared plumbing: establishes the clique and runs `party` on every
    /// node with access to the concrete [`TcpParty`] (the sync surface
    /// coerces it to `&mut dyn Comm`; the async driver needs the
    /// event-polling seam underneath).
    fn run_parties<O, F>(self, party: F) -> Result<ClusterReport<O>, RuntimeError>
    where
        O: Send,
        F: Fn(&mut TcpParty, PartyId) -> O + Send + Sync,
    {
        // Reserve n free localhost ports.
        // ca-lint: allow(unbounded-alloc) — capacity is the locally configured party count
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(self.n);
        {
            // Hold the listeners until all ports are chosen, then drop.
            // ca-lint: allow(unbounded-alloc) — capacity is the locally configured party count
            let mut holders = Vec::with_capacity(self.n);
            for _ in 0..self.n {
                let l = StdTcpListener::bind(("127.0.0.1", 0))?;
                addrs.push(l.local_addr()?);
                holders.push(l);
            }
        }

        if let Some(dir) = &self.trace_dir {
            std::fs::create_dir_all(dir)?;
        }

        let delta = self.delta;
        let opts = &self.opts;
        let clock_factory = self.clock_factory.clone();
        std::thread::scope(|scope| {
            // ca-lint: allow(unbounded-alloc) — capacity is the locally configured party count
            let mut handles = Vec::with_capacity(self.n);
            for i in 0..self.n {
                let addrs = addrs.clone();
                let party = &party;
                let trace_dir = self.trace_dir.clone();
                let plan = self.fault_plans.get(&i).cloned();
                let clock_factory = clock_factory.clone();
                handles.push(scope.spawn(
                    move || -> Result<(O, RuntimeStats, u64), RuntimeError> {
                        let clock: Box<dyn Clock> = match &clock_factory {
                            Some(factory) => factory(i),
                            None => Box::new(MonotonicClock::default()),
                        };
                        let mut comm =
                            TcpParty::establish_with(PartyId(i), &addrs, delta, opts, clock)?;
                        if let Some(plan) = plan {
                            comm.set_fault_plan(plan);
                        }
                        if let Some(dir) = trace_dir {
                            let sink = JsonlSink::create(&dir.join(format!("party_{i}.jsonl")))?;
                            comm.set_trace(Arc::new(sink));
                        }
                        let out = party(&mut comm, PartyId(i));
                        Ok((out, comm.stats(), comm.round()))
                    },
                ));
            }
            // Join EVERY party thread before surfacing anything: stopping at
            // the first failure would leak still-running parties past the
            // scope (blocked on each other's sockets) and drop their
            // results silently.
            let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            let mut report = ClusterReport {
                outputs: Vec::new(),
                stats: Vec::new(),
                rounds: Vec::new(),
            };
            let mut first_err = None;
            let mut first_panic = None;
            for res in joined {
                match res {
                    Ok(Ok((out, stats, rounds))) => {
                        report.outputs.push(out);
                        report.stats.push(stats);
                        report.rounds.push(rounds);
                    }
                    Ok(Err(e)) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
            if let Some(e) = first_err {
                return Err(e);
            }
            Ok(report)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clock, ManualClock, TcpParty};
    use ca_net::CommExt;

    /// A party driven by a [`ManualClock`] that never ticks still completes
    /// rounds: with no live peers to wait on, `next_round` must not consult
    /// the wall clock at all. This pins the clock-injection seam.
    #[test]
    fn manual_clock_party_runs_rounds_without_wall_time() {
        let l = StdTcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = l.local_addr().unwrap();
        drop(l);
        let clock = ManualClock::new();
        let mut comm = TcpParty::establish_with_clock(
            PartyId(0),
            &[addr],
            Duration::from_secs(3600),
            Box::new(clock.clone()),
        )
        .unwrap();
        for r in 0..3u64 {
            let inbox = comm.exchange(&r);
            let got: Vec<u64> = inbox
                .decode_each::<u64>()
                .into_iter()
                .map(|(_, v)| v)
                .collect();
            assert_eq!(got, vec![r]);
        }
        assert_eq!(clock.now(), Duration::ZERO);
    }

    #[test]
    fn all_to_all_over_tcp() {
        let outputs = TcpCluster::new(4)
            .with_delta(Duration::from_millis(1000))
            .run(|ctx, id| {
                let inbox = ctx.exchange(&(id.index() as u64 + 100));
                let mut vals: Vec<u64> = inbox
                    .decode_each::<u64>()
                    .into_iter()
                    .map(|(_, v)| v)
                    .collect();
                vals.sort_unstable();
                vals
            })
            .unwrap();
        for out in outputs {
            assert_eq!(out, vec![100, 101, 102, 103]);
        }
    }

    #[test]
    fn traced_cluster_writes_per_party_timelines() {
        let dir = std::env::temp_dir().join(format!("ca_cluster_trace_{}", std::process::id()));
        let outputs = TcpCluster::new(3)
            .with_delta(Duration::from_millis(1000))
            .with_trace_dir(&dir)
            .run(|ctx, id| {
                ctx.scoped("hello", |ctx| {
                    ctx.exchange(&(id.index() as u64))
                        .decode_each::<u64>()
                        .len()
                })
            })
            .unwrap();
        assert_eq!(outputs, vec![3, 3, 3]);
        for i in 0..3u64 {
            let path = dir.join(format!("party_{i}.jsonl"));
            let records = ca_trace::read_jsonl(&path).unwrap();
            assert!(
                records.iter().all(|r| r.party == Some(i)),
                "party_{i}.jsonl holds only its own timeline"
            );
            assert!(records.iter().any(
                |r| matches!(&r.event, ca_trace::Event::ScopeEnter { name } if name == "hello")
            ));
            // 2 non-self sends and at least 2 peer delivers in scope.
            assert_eq!(
                records
                    .iter()
                    .filter(|r| r.event.kind() == "send" && r.scope == "hello")
                    .count(),
                2
            );
            assert_eq!(ca_trace::check(&records), vec![]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A panic inside one party propagates with its ORIGINAL payload after
    /// every other thread has been joined — not masked by a generic
    /// "party thread panicked" from an unlucky join order.
    #[test]
    #[should_panic(expected = "party 1 exploded")]
    fn party_panic_surfaces_original_payload_after_joining_all() {
        let _ = TcpCluster::new(3)
            .with_delta(Duration::from_millis(1000))
            .run(|ctx, id| {
                let inbox = ctx.exchange(&(id.index() as u64));
                assert_eq!(inbox.decode_each::<u64>().len(), 3);
                if id.index() == 1 {
                    panic!("party 1 exploded");
                }
                // The other parties finish a round without the panicked
                // peer; Bye/Gone handling keeps them from hanging.
                ctx.exchange(&1u64);
            });
    }

    /// End-to-end version of the frame-length hardening: a raw byzantine
    /// peer completes the handshake, then announces a ~4 GiB frame. The
    /// honest party must drop the peer cleanly (no allocation, no panic)
    /// and keep completing rounds without it.
    #[test]
    fn oversized_length_prefix_drops_peer_cleanly() {
        use std::io::Write as _;

        use ca_codec::Encode as _;

        use crate::Frame;

        let listener = StdTcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr0 = listener.local_addr().unwrap();
        drop(listener);

        let evil = std::thread::spawn(move || {
            // Party 1 dials party 0 and handshakes honestly…
            let mut stream = loop {
                match std::net::TcpStream::connect(addr0) {
                    Ok(s) => break s,
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            };
            let hello = Frame::Hello { from: 1 }.encode_to_vec();
            let mut buf = (hello.len() as u32).to_be_bytes().to_vec();
            buf.extend_from_slice(&hello);
            stream.write_all(&buf).unwrap();
            // …then claims a 4 GiB frame body is coming.
            stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
            // Keep the socket open so only the length check can drop us.
            std::thread::sleep(Duration::from_millis(500));
        });

        let mut comm = TcpParty::establish(
            PartyId(0),
            &[addr0, "127.0.0.1:9".parse().unwrap()],
            Duration::from_secs(30),
        )
        .unwrap();
        let inbox = comm.exchange(&7u64);
        // The oversized claim marked the peer gone; nothing was delivered
        // from it and the round still completed promptly (well before the
        // 30 s Δ — the peer is not waited on once dropped).
        assert!(inbox.raw_from(PartyId(1)).is_empty());
        assert_eq!(inbox.decode_from::<u64>(PartyId(0)), Some(7));
        assert_eq!(comm.silent_parties(), vec![PartyId(1)]);
        assert_eq!(comm.stats().peers_gone, 1);
        evil.join().unwrap();
    }

    #[test]
    fn multi_round_protocol_over_tcp() {
        let outputs = TcpCluster::new(3)
            .with_delta(Duration::from_millis(1000))
            .run(|ctx, id| {
                let mut sum = 0u64;
                for r in 0..5u64 {
                    let inbox = ctx.exchange(&(r * 10 + id.index() as u64));
                    sum += inbox
                        .decode_each::<u64>()
                        .into_iter()
                        .map(|(_, v)| v)
                        .sum::<u64>();
                }
                sum
            })
            .unwrap();
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
    }

    /// Establishment against a peer that never comes up must return
    /// `EstablishTimeout` (with the missing peer identified), not spin
    /// forever.
    #[test]
    fn establish_times_out_on_unreachable_peer() {
        // Reserve two ports, release both; nobody listens on either.
        let l0 = StdTcpListener::bind(("127.0.0.1", 0)).unwrap();
        let l1 = StdTcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr0 = l0.local_addr().unwrap();
        let addr1 = l1.local_addr().unwrap();
        drop(l0);
        drop(l1);

        let opts = EstablishOpts {
            deadline: Duration::from_millis(300),
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            ..EstablishOpts::default()
        };
        // Party 1 dials party 0, which never listens.
        match TcpParty::establish_with(
            PartyId(1),
            &[addr0, addr1],
            Duration::from_millis(100),
            &opts,
            Box::new(crate::MonotonicClock::default()),
        ) {
            Err(RuntimeError::EstablishTimeout { missing }) => assert_eq!(missing, vec![0]),
            Err(other) => panic!("expected EstablishTimeout, got {other}"),
            Ok(_) => panic!("establishment against a dead peer succeeded"),
        }
    }

    /// The accept side must reject a hello claiming an index at or below
    /// its own (only higher-indexed parties dial it) and keep the slot
    /// open for the genuine peer.
    #[test]
    fn impersonating_hello_is_rejected_without_consuming_the_slot() {
        use std::io::Write as _;

        use ca_codec::Encode as _;

        use crate::Frame;

        let listener = StdTcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr0 = listener.local_addr().unwrap();
        drop(listener);

        let dial = move |hello_from: u32, delay: Duration| {
            std::thread::spawn(move || {
                std::thread::sleep(delay);
                let mut stream = loop {
                    match std::net::TcpStream::connect(addr0) {
                        Ok(s) => break s,
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                };
                let hello = Frame::Hello { from: hello_from }.encode_to_vec();
                let mut buf = (hello.len() as u32).to_be_bytes().to_vec();
                buf.extend_from_slice(&hello);
                stream.write_all(&buf).unwrap();
                // Hold the socket open long enough for the accept side to
                // make its decision.
                std::thread::sleep(Duration::from_millis(400));
            })
        };
        // Impersonator claims to be party 0 (the acceptor itself); the
        // honest party 1 arrives a bit later.
        let evil = dial(0, Duration::ZERO);
        let honest = dial(1, Duration::from_millis(100));

        let mut comm = TcpParty::establish(
            PartyId(0),
            &[addr0, "127.0.0.1:9".parse().unwrap()],
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(comm.stats().handshake_rejects, 1);
        // The honest peer's slot was preserved: a round completes with
        // its end-of-round marker... which it never sends (raw socket),
        // so just verify nothing from party 1 was misattributed.
        let inbox = comm.exchange(&5u64);
        assert_eq!(inbox.decode_from::<u64>(PartyId(0)), Some(5));
        evil.join().unwrap();
        honest.join().unwrap();
    }

    /// A stray connection (port scanner, wrong protocol) that sends
    /// garbage must be dropped — not abort establishment — and the real
    /// peer accepted afterwards.
    #[test]
    fn stray_connection_does_not_abort_establishment() {
        use std::io::Write as _;

        use ca_codec::Encode as _;

        use crate::Frame;

        let listener = StdTcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr0 = listener.local_addr().unwrap();
        drop(listener);

        let stray = std::thread::spawn(move || {
            let mut stream = loop {
                match std::net::TcpStream::connect(addr0) {
                    Ok(s) => break s,
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            };
            // A length prefix far beyond any hello, followed by junk.
            stream.write_all(&1_000_000u32.to_be_bytes()).unwrap();
            stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            std::thread::sleep(Duration::from_millis(400));
        });
        let honest = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            let mut stream = std::net::TcpStream::connect(addr0).unwrap();
            let hello = Frame::Hello { from: 1 }.encode_to_vec();
            let mut buf = (hello.len() as u32).to_be_bytes().to_vec();
            buf.extend_from_slice(&hello);
            stream.write_all(&buf).unwrap();
            std::thread::sleep(Duration::from_millis(400));
        });

        let comm = TcpParty::establish(
            PartyId(0),
            &[addr0, "127.0.0.1:9".parse().unwrap()],
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(comm.stats().handshake_rejects, 1);
        stray.join().unwrap();
        honest.join().unwrap();
    }

    /// Writer-queue overflow sheds the frame, disconnects the slow peer,
    /// and records both — instead of growing the queue without bound.
    #[test]
    fn writer_queue_overflow_disconnects_slow_peer() {
        use std::io::Write as _;

        use ca_codec::Encode as _;

        use crate::Frame;

        let listener = StdTcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr0 = listener.local_addr().unwrap();
        drop(listener);

        // A peer that handshakes then never reads: its TCP window fills,
        // the writer task blocks, and the tiny queue overflows.
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let sleeper = std::thread::spawn(move || {
            let mut stream = loop {
                match std::net::TcpStream::connect(addr0) {
                    Ok(s) => break s,
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            };
            let hello = Frame::Hello { from: 1 }.encode_to_vec();
            let mut buf = (hello.len() as u32).to_be_bytes().to_vec();
            buf.extend_from_slice(&hello);
            stream.write_all(&buf).unwrap();
            // Hold the socket open, reading nothing, until the test ends.
            let _ = done_rx.recv();
        });

        let opts = EstablishOpts {
            writer_queue_frames: 2,
            ..EstablishOpts::default()
        };
        let mut comm = TcpParty::establish_with(
            PartyId(0),
            &[addr0, "127.0.0.1:9".parse().unwrap()],
            Duration::from_millis(50),
            &opts,
            Box::new(crate::MonotonicClock::default()),
        )
        .unwrap();
        // Each round enqueues one Msg + one Eor to the non-reading peer;
        // with the socket buffer eventually full and a 2-frame queue,
        // overflow must hit within a bounded number of rounds.
        let payload = vec![0u8; 256 * 1024];
        let mut overflowed = false;
        for _ in 0..64 {
            comm.send(PartyId(1), &payload);
            let _ = comm.next_round();
            let stats = comm.stats();
            if stats.frames_shed > 0 {
                assert!(stats.overflow_disconnects >= 1);
                assert_eq!(comm.silent_parties(), vec![PartyId(1)]);
                overflowed = true;
                break;
            }
        }
        assert!(
            overflowed,
            "writer queue never overflowed: {:?}",
            comm.stats()
        );
        done_tx.send(()).unwrap();
        sleeper.join().unwrap();
    }
}
