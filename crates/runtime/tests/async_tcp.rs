//! The event-driven TCP driver end to end: asynchronous approximate
//! agreement over real sockets, with no Δ tuning anywhere — and with a
//! scripted mid-protocol crash that the survivors must ride out.

use ca_async::{rounds_for_spread, AsyncApprox};
use ca_bits::Nat;
use ca_net::PartyId;
use ca_runtime::{AsyncTcpOpts, FaultPlan, TcpCluster};

const N: usize = 4;
const T: usize = 1;

fn inputs() -> Vec<u64> {
    vec![0, 12, 500, 1000]
}

fn rounds() -> u64 {
    rounds_for_spread(&Nat::from_u64(1000))
}

fn check_survivors(outs: &[Option<Nat>], survivors: &[usize]) {
    let decided: Vec<&Nat> = survivors
        .iter()
        .map(|&i| {
            outs[i]
                .as_ref()
                .unwrap_or_else(|| panic!("party {i} must decide: {outs:?}"))
        })
        .collect();
    let lo = decided.iter().min().unwrap();
    let hi = decided.iter().max().unwrap();
    let spread = hi.checked_sub(lo).unwrap();
    assert!(spread <= Nat::one(), "ε-agreement violated: {outs:?}");
    let hull_lo = Nat::from_u64(*inputs().iter().min().unwrap());
    let hull_hi = Nat::from_u64(*inputs().iter().max().unwrap());
    assert!(
        **lo >= hull_lo && **hi <= hull_hi,
        "outputs escape the input hull: {outs:?}"
    );
}

/// All four parties decide ε-close values inside the input hull. The
/// cluster's Δ is set absurdly low to prove no code path waits on it:
/// progress is purely quorum-driven.
#[test]
fn async_aaa_decides_over_tcp_without_delta_tuning() {
    let outs = TcpCluster::new(N)
        .with_delta(std::time::Duration::from_nanos(1))
        .run_async(&AsyncTcpOpts::default(), |id: PartyId| {
            AsyncApprox::new(N, T, id, Nat::from_u64(inputs()[id.index()]), rounds())
        })
        .unwrap();
    assert_eq!(outs.len(), N);
    check_survivors(&outs, &[0, 1, 2, 3]);
}

/// Party 3 crashes mid-protocol (at its 15th delivered message, well
/// inside the run) under a [`FaultPlan`]; the three survivors still
/// decide, ε-close and in hull, and the crashed party reports no
/// decision.
#[test]
fn async_survivors_decide_past_mid_protocol_crash() {
    let outs = TcpCluster::new(N)
        .with_fault_plan(N - 1, FaultPlan::new().crash_at(15))
        .run_async(&AsyncTcpOpts::default(), |id: PartyId| {
            AsyncApprox::new(N, T, id, Nat::from_u64(inputs()[id.index()]), rounds())
        })
        .unwrap();
    assert_eq!(outs[N - 1], None, "the crashed party must not decide");
    check_survivors(&outs, &[0, 1, 2]);
}
