//! Engine integration: the same multiplexed deployment must work over
//! both transports, and its traces must be deterministic, well-scoped,
//! and clean under `ca-trace check`.

use std::sync::Arc;
use std::time::Duration;

use ca_adversary::{Attack, AttackKind};
use ca_ba::BaKind;
use ca_bits::Nat;
use ca_core::{check_agreement, pi_n};
use ca_engine::{run_engine_party, EngineConfig, SessionId, SessionPlan};
use ca_net::{Comm, Sim};
use ca_runtime::TcpCluster;
use ca_trace::{check, first_divergence, Record, RingBufferSink, TraceSink};

/// The session input for party `me` of session `sid`: clustered values
/// whose hull is `[base, base + n)`.
fn input_for(sid: SessionId, me: usize) -> Nat {
    Nat::from_u64(1000 + 17 * sid.0 + me as u64)
}

fn engine_party(ctx: &mut dyn Comm, plan: &SessionPlan, config: &EngineConfig) -> Vec<(u64, Nat)> {
    let out = run_engine_party(ctx, plan, config, |sctx, sid| {
        let input = input_for(sid, sctx.me().index());
        pi_n(sctx, &input, BaKind::TurpinCoan)
    });
    out.decided.into_iter().map(|(s, v)| (s.0, v)).collect()
}

/// One multiplexed deployment decides identically over the simulator and
/// over real TCP connections.
#[test]
fn multiplexed_sessions_agree_across_transports() {
    let n = 3;
    let k = 3;

    let sim_out: Vec<Vec<(u64, Nat)>> = {
        let plan = SessionPlan::closed(k);
        let config = EngineConfig::default();
        Sim::new(n)
            .run(move |ctx, _id| engine_party(ctx, &plan, &config))
            .honest_outputs()
            .into_iter()
            .cloned()
            .collect()
    };

    let tcp_out: Vec<Vec<(u64, Nat)>> = {
        let plan = SessionPlan::closed(k);
        let config = EngineConfig::default();
        TcpCluster::new(n)
            .with_delta(Duration::from_secs(5))
            .run(move |ctx, _id| engine_party(ctx, &plan, &config))
            .expect("tcp cluster")
    };

    assert_eq!(sim_out[0].len(), k);
    for sid in 0..k {
        let decisions: Vec<Nat> = sim_out.iter().map(|d| d[sid].1.clone()).collect();
        assert!(
            check_agreement(&decisions),
            "sim parties disagree on s{sid}"
        );
    }
    for party in 0..n {
        assert_eq!(
            sim_out[party], tcp_out[party],
            "transports disagree at party {party}"
        );
    }
}

fn traced_engine_run(n: usize, k: usize, attack: Attack) -> Vec<Record> {
    let t = ca_net::max_faults(n);
    let sink = Arc::new(RingBufferSink::new(8_000_000));
    let sim = attack
        .install(Sim::new(n), n, t)
        .with_trace(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let plan = SessionPlan::closed(k);
    let config = EngineConfig::default();
    sim.run(move |ctx, _id| engine_party(ctx, &plan, &config));
    let records = sink.records();
    assert_eq!(
        sink.total_seen() as usize,
        records.len(),
        "ring wrapped; grow the capacity"
    );
    records
}

/// A fault-free multiplexed trace satisfies every `ca-trace check`
/// invariant, and session activity is recoverable by scope prefix.
#[test]
fn multiplexed_trace_checks_clean_and_scopes_nest() {
    let records = traced_engine_run(4, 8, Attack::none());
    assert!(!records.is_empty());
    let violations = check(&records);
    assert!(violations.is_empty(), "violations: {violations:?}");

    // Every session's protocol activity nests under engine/s<id>/…
    for sid in 0..8u64 {
        let prefix = format!("engine/s{sid}/pi_n");
        assert!(
            records.iter().any(|r| r.scope.starts_with(&prefix)),
            "no records under {prefix}"
        );
    }
    // Engine lifecycle notes live directly in the engine scope.
    assert!(records.iter().any(|r| r.scope == "engine"
        && matches!(&r.event, ca_trace::Event::Note { label, .. } if label == "engine_admit")));
}

/// A 16-session deployment under an injected message-level fault traces
/// byte-identically across repeated runs — the property `ca-trace diff`
/// needs to localize real regressions.
#[test]
fn faulted_multiplexed_trace_is_deterministic() {
    let attack = Attack::new(AttackKind::Garbage).with_seed(23);
    let a = traced_engine_run(4, 16, attack);
    let b = traced_engine_run(4, 16, attack);
    assert!(
        first_divergence(&a, &b).is_none(),
        "nondeterministic multiplexed trace"
    );
}
