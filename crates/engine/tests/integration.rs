//! Engine integration: the same multiplexed deployment must work over
//! both transports, and its traces must be deterministic, well-scoped,
//! and clean under `ca-trace check`.

use std::sync::Arc;
use std::time::Duration;

use ca_adversary::{Attack, AttackKind};
use ca_async::AsyncApprox;
use ca_ba::BaKind;
use ca_bits::Nat;
use ca_core::{check_agreement, pi_n};
use ca_engine::{run_async_session, run_engine_party, EngineConfig, SessionId, SessionPlan};
use ca_net::{Comm, Sim};
use ca_runtime::TcpCluster;
use ca_trace::{check, first_divergence, Record, RingBufferSink, TraceSink};

/// The session input for party `me` of session `sid`: clustered values
/// whose hull is `[base, base + n)`.
fn input_for(sid: SessionId, me: usize) -> Nat {
    Nat::from_u64(1000 + 17 * sid.0 + me as u64)
}

fn engine_party(ctx: &mut dyn Comm, plan: &SessionPlan, config: &EngineConfig) -> Vec<(u64, Nat)> {
    let out = run_engine_party(ctx, plan, config, |sctx, sid| {
        let input = input_for(sid, sctx.me().index());
        pi_n(sctx, &input, BaKind::TurpinCoan)
    });
    out.decided.into_iter().map(|(s, v)| (s.0, v)).collect()
}

/// One multiplexed deployment decides identically over the simulator and
/// over real TCP connections.
#[test]
fn multiplexed_sessions_agree_across_transports() {
    let n = 3;
    let k = 3;

    let sim_out: Vec<Vec<(u64, Nat)>> = {
        let plan = SessionPlan::closed(k);
        let config = EngineConfig::default();
        Sim::new(n)
            .run(move |ctx, _id| engine_party(ctx, &plan, &config))
            .honest_outputs()
            .into_iter()
            .cloned()
            .collect()
    };

    let tcp_out: Vec<Vec<(u64, Nat)>> = {
        let plan = SessionPlan::closed(k);
        let config = EngineConfig::default();
        TcpCluster::new(n)
            .with_delta(Duration::from_secs(5))
            .run(move |ctx, _id| engine_party(ctx, &plan, &config))
            .expect("tcp cluster")
    };

    assert_eq!(sim_out[0].len(), k);
    for sid in 0..k {
        let decisions: Vec<Nat> = sim_out.iter().map(|d| d[sid].1.clone()).collect();
        assert!(
            check_agreement(&decisions),
            "sim parties disagree on s{sid}"
        );
    }
    for party in 0..n {
        assert_eq!(
            sim_out[party], tcp_out[party],
            "transports disagree at party {party}"
        );
    }
}

fn traced_engine_run(n: usize, k: usize, attack: Attack) -> Vec<Record> {
    let t = ca_net::max_faults(n);
    let sink = Arc::new(RingBufferSink::new(8_000_000));
    let sim = attack
        .install(Sim::new(n), n, t)
        .with_trace(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let plan = SessionPlan::closed(k);
    let config = EngineConfig::default();
    sim.run(move |ctx, _id| engine_party(ctx, &plan, &config));
    let records = sink.records();
    assert_eq!(
        sink.total_seen() as usize,
        records.len(),
        "ring wrapped; grow the capacity"
    );
    records
}

/// A fault-free multiplexed trace satisfies every `ca-trace check`
/// invariant, and session activity is recoverable by scope prefix.
#[test]
fn multiplexed_trace_checks_clean_and_scopes_nest() {
    let records = traced_engine_run(4, 8, Attack::none());
    assert!(!records.is_empty());
    let violations = check(&records);
    assert!(violations.is_empty(), "violations: {violations:?}");

    // Every session's protocol activity nests under engine/s<id>/…
    for sid in 0..8u64 {
        let prefix = format!("engine/s{sid}/pi_n");
        assert!(
            records.iter().any(|r| r.scope.starts_with(&prefix)),
            "no records under {prefix}"
        );
    }
    // Engine lifecycle notes live directly in the engine scope.
    assert!(records.iter().any(|r| r.scope == "engine"
        && matches!(&r.event, ca_trace::Event::Note { label, .. } if label == "engine_admit")));
}

/// One engine plan hosting synchronous and asynchronous sessions side by
/// side: even session ids run the exact protocol `pi_n`, odd ids run the
/// asynchronous approximate-agreement state machine through
/// [`run_async_session`]. Sync sessions must agree exactly; async ones
/// must be ε-close (ε = 1) inside their input hull — on every party.
#[test]
fn engine_hosts_async_sessions_beside_sync_ones() {
    let n = 4;
    let k = 6;
    let plan = SessionPlan::closed(k);
    let config = EngineConfig::default();
    let out: Vec<Vec<(u64, Nat)>> = Sim::new(n)
        .run(move |ctx, _id| {
            let decided = run_engine_party(ctx, &plan, &config, |sctx, sid| {
                let input = input_for(sid, sctx.me().index());
                if sid.0 % 2 == 0 {
                    pi_n(sctx, &input, BaKind::TurpinCoan)
                } else {
                    let (sn, st, sme) = (sctx.n(), sctx.t(), sctx.me());
                    // Session inputs span a hull of width n, so 4 async
                    // rounds more than halve the spread to ≤ 1; 64
                    // barriers is a generous budget for 4 RBC+witness
                    // exchanges.
                    run_async_session(sctx, AsyncApprox::new(sn, st, sme, input, 4), 64)
                        .expect("async session decides within the round budget")
                }
            });
            decided.decided.into_iter().map(|(s, v)| (s.0, v)).collect()
        })
        .honest_outputs()
        .into_iter()
        .cloned()
        .collect();

    for party_out in &out {
        assert_eq!(party_out.len(), k, "every session decides on every party");
    }
    for sid in 0..k as u64 {
        let decisions: Vec<Nat> = out.iter().map(|d| d[sid as usize].1.clone()).collect();
        if sid % 2 == 0 {
            assert!(check_agreement(&decisions), "sync session s{sid} disagrees");
        } else {
            let lo = decisions.iter().min().unwrap();
            let hi = decisions.iter().max().unwrap();
            assert!(
                hi.checked_sub(lo).unwrap() <= Nat::one(),
                "async session s{sid} not ε-close: {decisions:?}"
            );
            // Convexity: inside the session's input hull.
            let hull_lo = input_for(SessionId(sid), 0);
            let hull_hi = input_for(SessionId(sid), n - 1);
            assert!(
                *lo >= hull_lo && *hi <= hull_hi,
                "async session s{sid} escapes its hull: {decisions:?}"
            );
        }
    }
}

/// A 16-session deployment under an injected message-level fault traces
/// byte-identically across repeated runs — the property `ca-trace diff`
/// needs to localize real regressions.
#[test]
fn faulted_multiplexed_trace_is_deterministic() {
    let attack = Attack::new(AttackKind::Garbage).with_seed(23);
    let a = traced_engine_run(4, 16, attack);
    let b = traced_engine_run(4, 16, attack);
    assert!(
        first_divergence(&a, &b).is_none(),
        "nondeterministic multiplexed trace"
    );
}
