//! Closed-loop load generation demo: run multiplexed CA deployments
//! back to back for N seconds (default 2) and print the service summary.
//!
//! ```text
//! cargo run -p ca-engine --example closed_loop -- 2
//! ```

use std::time::Duration;

use ca_engine::loadgen::{run_closed_loop_for, LoadProfile};
use ca_runtime::MonotonicClock;

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    let profile = LoadProfile::closed(4, 8, 64);
    let clock = MonotonicClock::default();
    let report = run_closed_loop_for(&profile, Duration::from_secs(secs), &clock);

    println!("closed-loop loadgen: {secs}s budget");
    println!("  runs               {}", report.runs);
    println!(
        "  sessions           {} decided / {} submitted",
        report.sessions_decided, report.sessions_submitted
    );
    println!(
        "  sessions/sec       {:.1}",
        report.sessions_per_sec().unwrap_or(0.0)
    );
    println!(
        "  correctness        agreement={} validity={}",
        report.agreement, report.validity
    );
    println!(
        "  latency (rounds)   p50={} p99={}",
        report.stats.session_latency_rounds.quantile_permille(500),
        report.stats.session_latency_rounds.quantile_permille(990)
    );
    println!(
        "  batch occupancy    mean={} max={}",
        report.stats.batch_occupancy.mean(),
        report.stats.batch_occupancy.max()
    );
    println!(
        "  payload bits       {} total, {} per session",
        report.payload_bits,
        report.payload_bits / report.sessions_decided.max(1)
    );
    println!(
        "  wire bits (model)  {} total, {} per session",
        report.stats.wire_bits,
        report.stats.wire_bits / report.sessions_decided.max(1)
    );
    assert!(report.agreement && report.validity, "correctness violated");
}
