//! Aggregate service-level measurements of one engine run.

use std::collections::BTreeMap;

use ca_trace::Histogram;

/// Counters and histograms one party's engine accumulates over a run.
///
/// Payload accounting follows the paper's convention (`BITSℓ` counts
/// protocol payload only, self-sends free); `wire_bits` additionally
/// models the full TCP deployment cost from `ca_runtime::Frame` framing —
/// the quantity the S1 experiment amortizes across sessions.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Transport rounds the engine consumed.
    pub engine_rounds: u64,
    /// Sessions admitted into the table.
    pub sessions_admitted: u64,
    /// Open-loop arrivals rejected because the table was full.
    pub sessions_rejected: u64,
    /// Sessions that ran to decision and were reaped.
    pub sessions_decided: u64,
    /// Envelopes flushed to peers (self-delivery excluded).
    pub envelopes_sent: u64,
    /// Session frames carried by those envelopes.
    pub frames_sent: u64,
    /// Frames per peer envelope — the batching (amortization) profile.
    pub batch_occupancy: Histogram,
    /// Protocol rounds per decided session.
    pub session_rounds: Histogram,
    /// Admission-to-decision latency per decided session, in engine
    /// rounds (includes closed-loop queueing only after admission; use
    /// arrival-round plans to measure queueing too).
    pub session_latency_rounds: Histogram,
    /// Per-session protocol payload bits sent to peers (the per-instance
    /// `BITSℓ` share of this party).
    pub payload_bits: BTreeMap<u64, u64>,
    /// Modeled TCP wire bits this party sent: `Frame::Msg` framing around
    /// every envelope, per-round `Frame::Eor` markers, and the per-run
    /// `Hello`/`Bye` connection setup — everything a real deployment pays.
    pub wire_bits: u64,
    /// Frames dropped by per-sender inbox backpressure.
    pub shed_frames: u64,
    /// Frames addressed to a session this party never admitted.
    pub stray_frames: u64,
    /// Frames addressed to an already-reaped session (the benign
    /// fire-and-forget tail of a decided protocol).
    pub late_frames: u64,
    /// Incoming transport messages that failed to decode as envelopes.
    pub malformed_envelopes: u64,
    /// Peak number of peers the transport reported silent (crashed or
    /// cut off) at any sampled round. A peak, not a sum: merged with
    /// `max` in [`EngineStats::absorb`] so aggregating parties or runs
    /// reports the worst outage seen, which is the number to compare
    /// against the `t < n/3` budget.
    pub peers_gone: u64,
}

impl EngineStats {
    /// Total protocol payload bits across sessions.
    #[must_use]
    pub fn payload_bits_total(&self) -> u64 {
        self.payload_bits.values().sum()
    }

    /// Element-wise accumulation: counters add, histograms merge,
    /// per-session payload maps add. Used both to aggregate one run
    /// across parties and to accumulate repeated runs in closed-loop
    /// load generation (`engine_rounds` then counts party-rounds).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.engine_rounds += other.engine_rounds;
        self.sessions_admitted += other.sessions_admitted;
        self.sessions_rejected += other.sessions_rejected;
        self.sessions_decided += other.sessions_decided;
        self.envelopes_sent += other.envelopes_sent;
        self.frames_sent += other.frames_sent;
        self.batch_occupancy.merge(&other.batch_occupancy);
        self.session_rounds.merge(&other.session_rounds);
        self.session_latency_rounds
            .merge(&other.session_latency_rounds);
        for (sid, bits) in &other.payload_bits {
            *self.payload_bits.entry(*sid).or_insert(0) += bits;
        }
        self.wire_bits += other.wire_bits;
        self.shed_frames += other.shed_frames;
        self.stray_frames += other.stray_frames;
        self.late_frames += other.late_frames;
        self.malformed_envelopes += other.malformed_envelopes;
        self.peers_gone = self.peers_gone.max(other.peers_gone);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters_and_merges_histograms() {
        let mut a = EngineStats {
            wire_bits: 10,
            ..EngineStats::default()
        };
        a.batch_occupancy.record(4);
        a.payload_bits.insert(1, 100);
        let mut b = EngineStats {
            wire_bits: 5,
            ..EngineStats::default()
        };
        b.batch_occupancy.record(8);
        b.payload_bits.insert(1, 50);
        b.payload_bits.insert(2, 7);
        a.peers_gone = 2;
        b.peers_gone = 1;
        a.absorb(&b);
        assert_eq!(a.wire_bits, 15);
        assert_eq!(a.peers_gone, 2, "peers_gone is a peak, not a sum");
        assert_eq!(a.batch_occupancy.count(), 2);
        assert_eq!(a.payload_bits[&1], 150);
        assert_eq!(a.payload_bits[&2], 7);
        assert_eq!(a.payload_bits_total(), 157);
    }
}
