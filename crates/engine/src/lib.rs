//! # ca-engine — the multi-tenant agreement service
//!
//! The paper proves per-instance communication optimality; a production
//! deployment runs **many** concurrent CA instances over shared
//! transport, where fixed per-connection and per-round costs amortize
//! across instances. This crate is that service layer:
//!
//! * [`run_engine_party`] — one party's engine: N concurrent sessions,
//!   each on its own thread against a session-scoped `Comm`, multiplexed
//!   over any transport (`Sim` or `TcpParty`) via session-tagged
//!   [`Envelope`]s, with round-batched flushing, bounded per-session
//!   inboxes, admission control, and graceful drain of decided sessions.
//! * [`EnvelopeAdversary`] — lifts single-instance `ca-adversary`
//!   strategies to the envelope layer, so multiplexed-vs-isolated
//!   equivalence is testable under every attack.
//! * [`loadgen`] — open-/closed-loop workload driving with per-session
//!   correctness checking and clock-injected timing.
//!
//! Session lifecycle: *submitted* (in the [`SessionPlan`]) → *running*
//! (admitted into the bounded table) → *decided* (body returned) →
//! *reaped* (slot freed, output recorded); open-loop arrivals that find
//! the table full are *rejected*. Traces nest every session's records
//! under `engine/s<id>/…`, so per-session timelines are recoverable from
//! one multiplexed run.

mod config;
mod driver;
mod envelope;
mod lift;
pub mod loadgen;
mod stats;

/// Hosts an asynchronous protocol instance ([`ca_async::AsyncProtocol`])
/// as an engine session body: the session-scoped round-based `Comm` is
/// one legal asynchronous schedule, so the same state machine that runs
/// under `ca_async::Executor` or the event-driven TCP driver runs here —
/// beside synchronous sessions in the same plan. Returns `None` if the
/// round budget runs out before the instance decides.
pub use ca_async::run_on_comm as run_async_session;
pub use config::{ArrivalMode, EngineConfig, SessionPlan, SessionSpec};
pub use driver::{run_engine_party, EngineOutput, ENGINE_SCOPE};
pub use envelope::{Envelope, EnvelopeRef, SessionFrame, SessionFrameRef, SessionId};
pub use lift::EnvelopeAdversary;
pub use loadgen::{LoadProfile, LoadReport};
pub use stats::EngineStats;
