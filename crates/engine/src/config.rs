//! Engine capacity/batching policy and session arrival plans.

use ca_core::FastPathConfig;

use crate::SessionId;

/// Capacity and batching policy of one engine deployment.
///
/// Every honest party must run the same configuration — admission and
/// shedding decisions are part of the deterministic lock-step state, which
/// is what keeps the parties' session tables aligned without extra
/// coordination rounds.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Session-table capacity: the maximum number of concurrently live
    /// sessions. Arrivals beyond it are rejected (open loop) or queued
    /// (closed loop).
    pub max_sessions: usize,
    /// Per-round cap on frames accepted into one session's inbox from one
    /// sender. Honest protocols send at most one message per peer per
    /// round, so anything above the cap is byzantine flooding; excess
    /// frames are shed (counted, never delivered) without touching other
    /// sessions.
    pub inbox_frames_per_sender: usize,
    /// Maximum frames coalesced into one envelope. A round's traffic to
    /// one destination splits into `⌈frames / max_batch_frames⌉`
    /// envelopes, bounding the largest single transport message.
    pub max_batch_frames: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_sessions: 64,
            inbox_frames_per_sender: 8,
            max_batch_frames: 1024,
        }
    }
}

/// How sessions are offered to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMode {
    /// All sessions are queued up front; the engine admits as capacity
    /// frees up and never rejects (arrival rounds are ignored).
    Closed,
    /// Sessions arrive at their `arrival_round`; an arrival that finds the
    /// session table full is rejected — explicit load shedding instead of
    /// an unbounded queue.
    Open,
}

/// One session submission.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Deployment-unique session id.
    pub id: SessionId,
    /// Engine round at which this session arrives (ignored in closed
    /// mode). Must be non-decreasing across the plan.
    pub arrival_round: u64,
    /// Fault-adaptive fast-path mode for this session's protocol run
    /// (`None` = worst-case only). Part of the shared deterministic
    /// input, like the rest of the plan: every honest party must submit
    /// the same per-session mode or their round schedules diverge.
    pub fast_path: Option<FastPathConfig>,
}

/// The full arrival schedule of one engine run.
///
/// The plan is part of the shared deterministic input: every honest party
/// runs the same plan, so all session tables evolve in lock step.
#[derive(Debug, Clone)]
pub struct SessionPlan {
    /// Arrival semantics.
    pub mode: ArrivalMode,
    /// Sessions in arrival order.
    pub sessions: Vec<SessionSpec>,
}

impl SessionPlan {
    /// A closed-loop plan of `k` sessions with ids `0..k`, all queued at
    /// round 0.
    #[must_use]
    pub fn closed(k: usize) -> Self {
        Self {
            mode: ArrivalMode::Closed,
            sessions: (0..k as u64)
                .map(|id| SessionSpec {
                    id: SessionId(id),
                    arrival_round: 0,
                    fast_path: None,
                })
                .collect(),
        }
    }

    /// An open-loop plan from `(id, arrival_round)` pairs.
    #[must_use]
    pub fn open(arrivals: impl IntoIterator<Item = (u64, u64)>) -> Self {
        Self {
            mode: ArrivalMode::Open,
            sessions: arrivals
                .into_iter()
                .map(|(id, arrival_round)| SessionSpec {
                    id: SessionId(id),
                    arrival_round,
                    fast_path: None,
                })
                .collect(),
        }
    }

    /// Enables the fault-adaptive fast path with `cfg` on every session
    /// in the plan.
    #[must_use]
    pub fn with_fast_path(mut self, cfg: FastPathConfig) -> Self {
        for s in &mut self.sessions {
            s.fast_path = Some(cfg);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_plan_enumerates_ids() {
        let plan = SessionPlan::closed(3);
        assert_eq!(plan.mode, ArrivalMode::Closed);
        let ids: Vec<u64> = plan.sessions.iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(plan.sessions.iter().all(|s| s.arrival_round == 0));
    }

    #[test]
    fn open_plan_keeps_arrival_rounds() {
        let plan = SessionPlan::open([(5, 0), (9, 2)]);
        assert_eq!(plan.mode, ArrivalMode::Open);
        assert_eq!(plan.sessions[1].id, SessionId(9));
        assert_eq!(plan.sessions[1].arrival_round, 2);
        assert!(plan.sessions.iter().all(|s| s.fast_path.is_none()));
    }

    #[test]
    fn with_fast_path_marks_every_session() {
        let cfg = FastPathConfig::default();
        let plan = SessionPlan::closed(3).with_fast_path(cfg);
        assert!(plan.sessions.iter().all(|s| s.fast_path == Some(cfg)));
    }
}
