//! The engine driver: one party's multi-tenant session executor.
//!
//! Mirrors the `Sim` executor pattern one level up. Each admitted session
//! runs its protocol body on its own scoped thread against a
//! [`SessionComm`]; the driver — itself running as an ordinary party
//! closure against any [`Comm`], so the same code multiplexes over the
//! deterministic `Sim` and the TCP runtime — repeats a lock-step service
//! round:
//!
//! 1. **Admit** due sessions while the table has capacity (open-loop
//!    arrivals past capacity are rejected, closed-loop ones wait).
//! 2. **Collect** exactly one submission per live session over a bounded
//!    channel, then process them in session-id order (determinism does
//!    not depend on thread scheduling).
//! 3. **Replay** each session's buffered trace events through the parent
//!    transport under the `engine/s<id>` scope prefix.
//! 4. **Batch** all sessions' same-destination sends into session-tagged
//!    envelopes and flush them once per destination.
//! 5. **Advance** the shared transport round, then **route** incoming
//!    envelope frames into bounded per-session inboxes, shedding floods
//!    past the per-sender cap.
//! 6. **Reap** decided sessions, recording latency and output.
//!
//! Teardown is ownership-driven: dropping the session table disconnects
//! every per-session channel, which unwinds session threads cleanly even
//! when the transport itself shuts the driver down mid-round (e.g. the
//! simulator adaptively corrupting this party).

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Once;

use bytes::Bytes;
use ca_codec::{Encode as _, Writer};
use ca_net::{Comm, Inbox, PartyId};
use ca_runtime::LENGTH_PREFIX_LEN;
use ca_trace::Event;

use crate::{
    ArrivalMode, EngineConfig, EngineStats, Envelope, EnvelopeRef, SessionFrame, SessionId,
    SessionPlan,
};

/// The trace scope every engine-level record lives under; sessions nest
/// below it as `engine/s<id>/…`.
pub const ENGINE_SCOPE: &str = "engine";

/// What one party's engine run produced.
#[derive(Debug)]
pub struct EngineOutput<O> {
    /// Decided sessions with their protocol outputs, in session-id order.
    pub decided: Vec<(SessionId, O)>,
    /// Arrivals rejected by admission control, in arrival order.
    pub rejected: Vec<SessionId>,
    /// Aggregate service measurements.
    pub stats: EngineStats,
}

impl<O> EngineOutput<O> {
    /// The decided output of `sid`, if that session ran here.
    pub fn output_of(&self, sid: SessionId) -> Option<&O> {
        self.decided
            .binary_search_by_key(&sid, |(s, _)| *s)
            .ok()
            .map(|i| &self.decided[i].1)
    }
}

/// Payload used to unwind session threads on engine teardown. Mirrors the
/// simulator's quiet-shutdown pattern: the panic hook stays silent for it.
struct EngineShutdown;

fn install_quiet_engine_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<EngineShutdown>().is_none() {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

enum SessionSubmission<O> {
    /// The session flushed a round: its buffered sends and trace events.
    Round {
        sid: SessionId,
        sends: Vec<(PartyId, Bytes)>,
        events: Vec<Event>,
    },
    /// The session's body returned; sends are its fire-and-forget tail.
    Done {
        sid: SessionId,
        output: O,
        sends: Vec<(PartyId, Bytes)>,
        events: Vec<Event>,
    },
    /// The session's body panicked (a real bug, not a shutdown).
    Panicked { sid: SessionId, info: String },
}

enum SessionDirective {
    Deliver(Inbox),
}

/// The per-session `Comm` a session protocol runs against: same `n`/`t`/
/// `me` as the parent transport, but sends buffer locally and round
/// boundaries synchronize with the driver instead of the network.
struct SessionComm<O> {
    n: usize,
    t: usize,
    me: PartyId,
    sid: SessionId,
    trace_on: bool,
    pending: Vec<(PartyId, Bytes)>,
    events: Vec<Event>,
    submit: SyncSender<SessionSubmission<O>>,
    deliver: Receiver<SessionDirective>,
}

impl<O> Comm for SessionComm<O> {
    fn n(&self) -> usize {
        self.n
    }

    fn t(&self) -> usize {
        self.t
    }

    fn me(&self) -> PartyId {
        self.me
    }

    fn send_bytes(&mut self, to: PartyId, payload: Bytes) {
        self.pending.push((to, payload));
    }

    fn next_round(&mut self) -> Inbox {
        let sends = std::mem::take(&mut self.pending);
        let events = std::mem::take(&mut self.events);
        if self
            .submit
            .send(SessionSubmission::Round {
                sid: self.sid,
                sends,
                events,
            })
            .is_err()
        {
            panic::panic_any(EngineShutdown);
        }
        match self.deliver.recv() {
            Ok(SessionDirective::Deliver(inbox)) => inbox,
            Err(_) => panic::panic_any(EngineShutdown),
        }
    }

    fn push_scope(&mut self, name: &str) {
        if self.trace_on {
            self.events.push(Event::ScopeEnter {
                name: name.to_owned(),
            });
        }
    }

    fn pop_scope(&mut self) {
        if self.trace_on {
            self.events.push(Event::ScopeExit {
                name: String::new(),
            });
        }
    }

    fn trace_enabled(&self) -> bool {
        self.trace_on
    }

    fn trace(&mut self, event: Event) {
        if self.trace_on {
            self.events.push(event);
        }
    }
}

fn session_thread<O>(
    mut comm: SessionComm<O>,
    body: &(dyn Fn(&mut dyn Comm, SessionId) -> O + Sync),
) {
    let sid = comm.sid;
    let result = panic::catch_unwind(AssertUnwindSafe(|| body(&mut comm, sid)));
    match result {
        Ok(output) => {
            let sends = std::mem::take(&mut comm.pending);
            let events = std::mem::take(&mut comm.events);
            // The driver may already be tearing down; a disconnected
            // channel is a valid exit, not an error.
            let _ = comm.submit.send(SessionSubmission::Done {
                sid,
                output,
                sends,
                events,
            });
        }
        Err(payload) if payload.downcast_ref::<EngineShutdown>().is_some() => {}
        Err(payload) => {
            let _ = comm.submit.send(SessionSubmission::Panicked {
                sid,
                info: panic_message(payload.as_ref()),
            });
        }
    }
}

/// Replays one session's round of buffered trace events through the
/// parent transport, nesting them under `s<id>` plus the session's scope
/// stack as it stood after the previous round. `rel_stack` tracks that
/// stack across rounds.
fn replay_session_trace(
    ctx: &mut dyn Comm,
    sid: SessionId,
    rel_stack: &mut Vec<String>,
    events: Vec<Event>,
) {
    if events.is_empty() {
        return;
    }
    let tag = sid.scope_tag();
    ctx.push_scope(&tag);
    for name in rel_stack.iter() {
        ctx.push_scope(name);
    }
    for event in events {
        match event {
            Event::ScopeEnter { name } => {
                ctx.push_scope(&name);
                rel_stack.push(name);
            }
            Event::ScopeExit { .. } => {
                ctx.pop_scope();
                rel_stack.pop();
            }
            other => ctx.trace(other),
        }
    }
    for _ in 0..=rel_stack.len() {
        ctx.pop_scope();
    }
}

// ---------------------------------------------------------------------------
// Deployment wire-cost model
// ---------------------------------------------------------------------------
//
// `Metrics::honest_bits` stays payload-only (the paper's BITSℓ); the
// engine additionally models what a TCP deployment pays per transport
// message, per round, and per connection, using the exact
// `ca_runtime::Frame` layout. This is the denominator of the S1
// amortization claim: K multiplexed sessions share round markers,
// connection setup, and per-message framing that K isolated deployments
// each pay in full.

/// Wire bits of shipping `payload_len` envelope bytes as one
/// `Frame::Msg { round, payload }`.
fn msg_wire_bits(round: u64, payload_len: usize) -> u64 {
    let body = 1 + Writer::varint_len(round) + Writer::varint_len(payload_len as u64) + payload_len;
    8 * (LENGTH_PREFIX_LEN + body) as u64
}

/// Wire bits of the `Frame::Eor { round }` markers one round costs: one
/// per peer.
fn round_sync_bits(n: usize, round: u64) -> u64 {
    let body = 1 + Writer::varint_len(round);
    (n as u64 - 1) * 8 * (LENGTH_PREFIX_LEN + body) as u64
}

/// Wire bits of per-connection setup/teardown (`Hello` out to each peer,
/// `Bye` at drop), paid once per deployment rather than once per session.
fn connection_bits(n: usize, me: PartyId) -> u64 {
    let hello_body = 1 + Writer::varint_len(me.index() as u64);
    let bye_body = 1usize;
    (n as u64 - 1) * 8 * (2 * LENGTH_PREFIX_LEN + hello_body + bye_body) as u64
}

struct Slot {
    deliver: SyncSender<SessionDirective>,
    rel_stack: Vec<String>,
    admit_round: u64,
    rounds: u64,
}

/// Runs this party's share of a multi-tenant engine deployment.
///
/// `body` is the per-session protocol (e.g. `ca_core::pi_n` applied to
/// the session's input); it runs once per admitted session against a
/// session-scoped `Comm`. All honest parties must call this with the same
/// `plan` and `config` — admission is part of the lock-step state.
///
/// Works over any transport: pass the `ctx` given to a `Sim::run` or
/// `TcpCluster::run` party closure.
///
/// # Panics
///
/// Panics if a session body panics (with that session's panic message),
/// or if `config` capacities are zero.
// ca-budget: scope(engine) — the round scope is pushed via ENGINE_SCOPE, not a literal
pub fn run_engine_party<O, F>(
    ctx: &mut dyn Comm,
    plan: &SessionPlan,
    config: &EngineConfig,
    body: F,
) -> EngineOutput<O>
where
    O: Send,
    F: Fn(&mut dyn Comm, SessionId) -> O + Sync,
{
    assert!(config.max_sessions > 0, "engine needs table capacity");
    assert!(config.max_batch_frames > 0, "engine needs batch capacity");
    assert!(
        config.inbox_frames_per_sender > 0,
        "engine needs inbox capacity"
    );
    install_quiet_engine_hook();

    let n = ctx.n();
    let t = ctx.t();
    let me = ctx.me();
    let mut stats = EngineStats::default();
    stats.wire_bits += connection_bits(n, me);
    let mut decided: Vec<(SessionId, O)> = Vec::new();
    let mut rejected: Vec<SessionId> = Vec::new();

    // Bounded by the session table: at most one in-flight submission per
    // live session, so `max_sessions` is exactly the depth needed to
    // never block a session behind the driver.
    let (submit_tx, submit_rx) =
        std::sync::mpsc::sync_channel::<SessionSubmission<O>>(config.max_sessions);

    ctx.push_scope(ENGINE_SCOPE);
    std::thread::scope(|scope| {
        let body: &(dyn Fn(&mut dyn Comm, SessionId) -> O + Sync) = &body;
        let mut table: BTreeMap<u64, Slot> = BTreeMap::new();
        let mut reaped: BTreeSet<u64> = BTreeSet::new();
        let mut next_spec = 0usize;
        let mut engine_round: u64 = 0;

        loop {
            // ---- 1. Admission ----
            while next_spec < plan.sessions.len() {
                let spec = &plan.sessions[next_spec];
                if plan.mode == ArrivalMode::Open && spec.arrival_round > engine_round {
                    break;
                }
                let duplicate = table.contains_key(&spec.id.0) || reaped.contains(&spec.id.0);
                if table.len() >= config.max_sessions || duplicate {
                    if plan.mode == ArrivalMode::Closed && !duplicate {
                        break; // closed loop: wait for a slot to free up
                    }
                    // Open loop (or duplicate id): shed the arrival.
                    rejected.push(spec.id);
                    stats.sessions_rejected += 1;
                    if ctx.trace_enabled() {
                        ctx.trace(Event::Note {
                            label: "engine_reject".to_owned(),
                            value: spec.id.to_string(),
                        });
                    }
                    next_spec += 1;
                    continue;
                }
                // Depth 1 suffices: the driver sends at most one directive
                // before collecting the session's next submission.
                let (deliver_tx, deliver_rx) = std::sync::mpsc::sync_channel(1);
                let comm = SessionComm {
                    n,
                    t,
                    me,
                    sid: spec.id,
                    trace_on: ctx.trace_enabled(),
                    pending: Vec::new(),
                    events: Vec::new(),
                    submit: submit_tx.clone(),
                    deliver: deliver_rx,
                };
                scope.spawn(move || session_thread(comm, body));
                table.insert(
                    spec.id.0,
                    Slot {
                        deliver: deliver_tx,
                        rel_stack: Vec::new(),
                        admit_round: engine_round,
                        rounds: 0,
                    },
                );
                stats.sessions_admitted += 1;
                if ctx.trace_enabled() {
                    ctx.trace(Event::Note {
                        label: "engine_admit".to_owned(),
                        value: spec.id.to_string(),
                    });
                }
                next_spec += 1;
            }

            if table.is_empty() {
                if next_spec >= plan.sessions.len() {
                    break; // drained: every session decided or rejected
                }
                // Open-loop idle gap: next arrival is in the future.
                let _ = ctx.next_round();
                stats.peers_gone = stats.peers_gone.max(ctx.silent_parties().len() as u64);
                stats.wire_bits += round_sync_bits(n, engine_round);
                stats.engine_rounds += 1;
                engine_round += 1;
                continue;
            }

            // ---- 2. Collect one submission per live session ----
            let mut expected: BTreeSet<u64> = table.keys().copied().collect();
            let mut subs: BTreeMap<u64, SessionSubmission<O>> = BTreeMap::new();
            while !expected.is_empty() {
                let sub = submit_rx
                    .recv()
                    .expect("engine: session threads disconnected mid-round");
                let sid = match &sub {
                    SessionSubmission::Round { sid, .. }
                    | SessionSubmission::Done { sid, .. }
                    | SessionSubmission::Panicked { sid, .. } => sid.0,
                };
                assert!(
                    expected.remove(&sid),
                    "engine: duplicate submission from session {sid} in one round"
                );
                subs.insert(sid, sub);
            }

            // ---- 3+4. Process in session-id order; queue outgoing ----
            // Frames per destination accumulate in session order, so the
            // wire image is independent of session-thread scheduling.
            let mut outgoing: Vec<Vec<SessionFrame>> = vec![Vec::new(); n];
            for (sid_raw, sub) in subs {
                match sub {
                    SessionSubmission::Round { sid, sends, events } => {
                        let slot = table.get_mut(&sid_raw).expect("live session has a slot");
                        slot.rounds += 1;
                        replay_session_trace(ctx, sid, &mut slot.rel_stack, events);
                        queue_sends(&mut outgoing, &mut stats, me, sid, sends);
                    }
                    SessionSubmission::Done {
                        sid,
                        output,
                        sends,
                        events,
                    } => {
                        let mut slot = table.remove(&sid_raw).expect("live session has a slot");
                        replay_session_trace(ctx, sid, &mut slot.rel_stack, events);
                        queue_sends(&mut outgoing, &mut stats, me, sid, sends);
                        stats.sessions_decided += 1;
                        stats.session_rounds.record(slot.rounds);
                        stats
                            .session_latency_rounds
                            .record(engine_round - slot.admit_round + 1);
                        reaped.insert(sid_raw);
                        if ctx.trace_enabled() {
                            ctx.trace(Event::Note {
                                label: "engine_reap".to_owned(),
                                value: sid.to_string(),
                            });
                        }
                        decided.push((sid, output));
                    }
                    SessionSubmission::Panicked { sid, info } => {
                        panic!("engine session {sid} panicked: {info}");
                    }
                }
            }

            // ---- 4. Batch & flush envelopes ----
            for (to, frames) in outgoing.into_iter().enumerate() {
                if frames.is_empty() {
                    continue;
                }
                let to = PartyId(to);
                let mut frames = frames;
                while !frames.is_empty() {
                    let rest = if frames.len() > config.max_batch_frames {
                        frames.split_off(config.max_batch_frames)
                    } else {
                        Vec::new()
                    };
                    let env = Envelope { frames };
                    let payload = env.encode_to_vec();
                    if to != me {
                        stats.envelopes_sent += 1;
                        stats.frames_sent += env.frames.len() as u64;
                        stats.batch_occupancy.record(env.frames.len() as u64);
                        stats.wire_bits += msg_wire_bits(engine_round, payload.len());
                    }
                    // ca-budget: raw-send(envelope batcher meters wire_bits per batch above; per-frame CommExt metering would double-count)
                    ctx.send_bytes(to, Bytes::from(payload));
                    frames = rest;
                }
            }

            if table.is_empty() && next_spec >= plan.sessions.len() {
                // Graceful shutdown: the last sessions decided this round.
                // Their fire-and-forget tail is buffered in the transport
                // exactly like a single protocol's final sends — nobody is
                // left waiting on a further round boundary.
                break;
            }

            // ---- 5. Advance the shared transport round ----
            let inbox = ctx.next_round();
            stats.peers_gone = stats.peers_gone.max(ctx.silent_parties().len() as u64);
            stats.wire_bits += round_sync_bits(n, engine_round);
            stats.engine_rounds += 1;
            engine_round += 1;

            // ---- 5. Route incoming frames to session inboxes ----
            let mut routed: BTreeMap<u64, Inbox> = table
                .keys()
                .map(|sid| (*sid, Inbox::with_parties(n)))
                .collect();
            for from in 0..n {
                let from = PartyId(from);
                // Per-(session, sender) backpressure: honest peers send at
                // most one frame per session per round, so the cap only
                // ever sheds byzantine floods.
                let mut accepted: BTreeMap<u64, usize> = BTreeMap::new();
                for raw in inbox.raw_from(from) {
                    // Borrowed decode: frame payloads point into `raw`, and
                    // each accepted one is re-anchored into the shared
                    // allocation with `slice_ref` — routing a batch to k
                    // sessions copies nothing.
                    let env = match EnvelopeRef::decode_from_slice(raw) {
                        Ok(env) => env,
                        Err(_) => {
                            stats.malformed_envelopes += 1;
                            continue;
                        }
                    };
                    for frame in env.frames {
                        let sid = frame.session.0;
                        let Some(session_inbox) = routed.get_mut(&sid) else {
                            if reaped.contains(&sid) {
                                stats.late_frames += 1;
                            } else {
                                stats.stray_frames += 1;
                            }
                            continue;
                        };
                        let count = accepted.entry(sid).or_insert(0);
                        if *count >= config.inbox_frames_per_sender {
                            stats.shed_frames += 1;
                        } else {
                            *count += 1;
                            session_inbox.push(from, raw.slice_ref(frame.payload));
                        }
                    }
                }
            }

            // ---- 5. Deliver ----
            for (sid, session_inbox) in routed {
                let slot = &table[&sid];
                let _ = slot.deliver.send(SessionDirective::Deliver(session_inbox));
            }
        }

        // Teardown: dropping the table disconnects any remaining session
        // channel (there are none on the normal path); dropping our
        // submit_tx clone lets the scope join cleanly.
        drop(table);
        drop(submit_tx);
    });
    ctx.pop_scope();

    decided.sort_by_key(|(sid, _)| *sid);
    EngineOutput {
        decided,
        rejected,
        stats,
    }
}

fn queue_sends(
    outgoing: &mut [Vec<SessionFrame>],
    stats: &mut EngineStats,
    me: PartyId,
    sid: SessionId,
    sends: Vec<(PartyId, Bytes)>,
) {
    for (to, payload) in sends {
        if to != me {
            *stats.payload_bits.entry(sid.0).or_insert(0) += 8 * payload.len() as u64;
        }
        outgoing[to.index()].push(SessionFrame {
            session: sid,
            payload,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_net::{CommExt as _, Sim};
    use ca_runtime::Frame;

    /// The hand-computed wire model must match the transport's actual
    /// frame layout bit for bit.
    #[test]
    fn wire_model_matches_frame_layout() {
        for (round, len) in [(0u64, 0usize), (5, 3), (300, 200), (1 << 20, 70_000)] {
            let frame = Frame::Msg {
                round,
                payload: vec![0xCD; len],
            };
            assert_eq!(msg_wire_bits(round, len), 8 * frame.wire_len() as u64);
        }
        let eor = Frame::Eor { round: 300 };
        assert_eq!(round_sync_bits(4, 300), 3 * 8 * eor.wire_len() as u64);
        let hello = Frame::Hello { from: 2 };
        assert_eq!(
            connection_bits(4, PartyId(2)),
            3 * 8 * (hello.wire_len() + Frame::Bye.wire_len()) as u64
        );
    }

    /// A 3-round all-to-all summing protocol, multiplexed K ways over the
    /// simulator: every session decides the same (correct) value on every
    /// party, and the engine terminates cleanly.
    #[test]
    fn multiplexed_echo_sessions_decide() {
        let n = 4;
        let k = 5;
        let plan = SessionPlan::closed(k);
        let config = EngineConfig::default();
        let report = Sim::new(n).run(|ctx, _id| {
            run_engine_party(ctx, &plan, &config, |sctx, sid| {
                let mut sum = 0u64;
                for round in 0..3u64 {
                    let inbox = sctx.exchange(&(sid.0 * 100 + round));
                    sum += inbox
                        .decode_each::<u64>()
                        .into_iter()
                        .map(|(_, v)| v)
                        .sum::<u64>();
                }
                sum
            })
        });
        let outputs = report.honest_outputs();
        assert_eq!(outputs.len(), n);
        for out in &outputs {
            assert_eq!(out.decided.len(), k);
            assert!(out.rejected.is_empty());
            assert_eq!(out.stats.sessions_admitted, k as u64);
            assert_eq!(out.stats.sessions_decided, k as u64);
            // All sessions ran the same 3 protocol rounds concurrently.
            assert_eq!(out.stats.engine_rounds, 3);
            // Full batching: every peer envelope carries all K sessions.
            assert_eq!(out.stats.batch_occupancy.max(), k as u64);
            for (sid, sum) in &out.decided {
                let per_round: u64 = (0..n as u64).map(|_| sid.0 * 100).sum::<u64>();
                assert_eq!(*sum, per_round * 3 + 3 * n as u64);
            }
        }
        // All parties agree per session.
        for w in outputs.windows(2) {
            assert_eq!(w[0].decided, w[1].decided);
        }
    }

    /// Transport shim that mimics a peer crashing partway through: it
    /// delegates to the real simulator transport but reports the last
    /// party silent from a given round on. Only the *accounting* is
    /// faked — which is exactly the seam the engine samples.
    struct SilentAfter<'a> {
        inner: &'a mut dyn Comm,
        rounds_seen: u64,
        silent_from: u64,
    }

    impl Comm for SilentAfter<'_> {
        fn n(&self) -> usize {
            self.inner.n()
        }
        fn t(&self) -> usize {
            self.inner.t()
        }
        fn me(&self) -> PartyId {
            self.inner.me()
        }
        fn send_bytes(&mut self, to: PartyId, payload: bytes::Bytes) {
            self.inner.send_bytes(to, payload);
        }
        fn next_round(&mut self) -> Inbox {
            self.rounds_seen += 1;
            self.inner.next_round()
        }
        fn push_scope(&mut self, name: &str) {
            self.inner.push_scope(name);
        }
        fn pop_scope(&mut self) {
            self.inner.pop_scope();
        }
        fn silent_parties(&self) -> Vec<PartyId> {
            if self.rounds_seen >= self.silent_from {
                vec![PartyId(self.n() - 1)]
            } else {
                Vec::new()
            }
        }
    }

    /// The engine samples `Comm::silent_parties` after every transport
    /// round and records the peak in `EngineStats::peers_gone`.
    #[test]
    fn engine_records_peak_silent_peers() {
        let n = 4;
        let plan = SessionPlan::closed(2);
        let config = EngineConfig::default();
        let report = Sim::new(n).run(|ctx, _id| {
            let mut ctx = SilentAfter {
                inner: ctx,
                rounds_seen: 0,
                silent_from: 2,
            };
            run_engine_party(&mut ctx, &plan, &config, |sctx, _sid| {
                for _ in 0..3u64 {
                    let _ = sctx.exchange(&1u64);
                }
                0u64
            })
        });
        for out in report.honest_outputs() {
            assert_eq!(out.stats.peers_gone, 1, "{:?}", out.stats);
        }
    }

    /// Closed-loop arrivals beyond capacity queue instead of rejecting:
    /// with capacity 2 and 5 sessions of differing lengths, everything
    /// still decides and no arrival is shed.
    #[test]
    fn closed_loop_queues_past_capacity() {
        let n = 3;
        let plan = SessionPlan::closed(5);
        let config = EngineConfig {
            max_sessions: 2,
            ..EngineConfig::default()
        };
        let report = Sim::new(n).run(|ctx, _id| {
            run_engine_party(ctx, &plan, &config, |sctx, sid| {
                // Sessions run different round counts (1..=3).
                let rounds = sid.0 % 3 + 1;
                let mut last = 0u64;
                for _ in 0..rounds {
                    let inbox = sctx.exchange(&sid.0);
                    last = inbox.decode_each::<u64>().len() as u64;
                }
                last
            })
        });
        for out in report.honest_outputs() {
            assert_eq!(out.decided.len(), 5);
            assert!(out.rejected.is_empty());
            assert_eq!(out.stats.sessions_rejected, 0);
        }
    }

    /// Open-loop arrivals past capacity are rejected deterministically,
    /// and live sessions are untouched by the shedding.
    #[test]
    fn open_loop_rejects_past_capacity() {
        let n = 3;
        let plan = SessionPlan::open((0..6).map(|i| (i, 0)));
        let config = EngineConfig {
            max_sessions: 4,
            ..EngineConfig::default()
        };
        let report = Sim::new(n).run(|ctx, _id| {
            run_engine_party(ctx, &plan, &config, |sctx, sid| {
                sctx.exchange(&sid.0).decode_each::<u64>().len()
            })
        });
        for out in report.honest_outputs() {
            assert_eq!(out.decided.len(), 4);
            assert_eq!(
                out.rejected,
                vec![SessionId(4), SessionId(5)],
                "exactly the arrivals past capacity are shed, in order"
            );
            assert_eq!(out.stats.sessions_rejected, 2);
            assert!(out.decided.iter().all(|(_, len)| *len == n));
        }
    }

    /// A duplicate session id (the first still live) is rejected rather
    /// than corrupting the live session's routing.
    #[test]
    fn duplicate_session_id_rejected() {
        let n = 3;
        let plan = SessionPlan {
            mode: ArrivalMode::Closed,
            sessions: vec![
                crate::SessionSpec {
                    id: SessionId(7),
                    arrival_round: 0,
                    fast_path: None,
                },
                crate::SessionSpec {
                    id: SessionId(7),
                    arrival_round: 0,
                    fast_path: None,
                },
            ],
        };
        let config = EngineConfig::default();
        let report = Sim::new(n).run(|ctx, _id| {
            run_engine_party(ctx, &plan, &config, |sctx, _sid| {
                sctx.exchange(&1u64).decode_each::<u64>().len()
            })
        });
        for out in report.honest_outputs() {
            assert_eq!(out.decided.len(), 1);
            assert_eq!(out.rejected, vec![SessionId(7)]);
        }
    }

    /// A session panic surfaces as an engine panic carrying the session
    /// id and original message (and the simulator reports it per party).
    #[test]
    fn session_panic_surfaces_with_session_id() {
        let n = 3;
        let plan = SessionPlan::closed(2);
        let config = EngineConfig::default();
        let result = std::panic::catch_unwind(|| {
            Sim::new(n).run(|ctx, _id| {
                run_engine_party(ctx, &plan, &config, |sctx, sid| {
                    let _ = sctx.exchange(&sid.0);
                    if sid.0 == 1 {
                        panic!("session body exploded");
                    }
                    0u64
                })
            })
        });
        let err = result.expect_err("must propagate");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("s1"), "panic names the session: {msg}");
        assert!(msg.contains("session body exploded"), "{msg}");
    }
}
