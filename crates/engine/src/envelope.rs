//! The session-tagged wire envelope.
//!
//! One engine round produces, per destination, one (or a few — see
//! `EngineConfig::max_batch_frames`) [`Envelope`]s coalescing the round's
//! messages of *every* live session. The envelope rides the existing
//! transports unchanged: it is an opaque payload to `Comm::send_bytes`,
//! and it decodes under the usual `ca-codec` discipline — claimed lengths
//! are validated against [`ca_codec::MAX_DECODE_CAPACITY`] and the bytes
//! actually present before any allocation, so a byzantine envelope can
//! neither OOM the router nor panic it.

use bytes::Bytes;
use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

/// Identifies one agreement session within an engine deployment.
///
/// Ids are assigned by the submitting workload and must be unique for the
/// lifetime of a deployment (the engine rejects duplicates of live ids and
/// routes frames for already-reaped ids to the late-frame counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl SessionId {
    /// The trace-scope tag for this session: `s<id>`.
    #[must_use]
    pub fn scope_tag(self) -> String {
        format!("s{}", self.0)
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl Encode for SessionId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl Decode for SessionId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SessionId(u64::decode(r)?))
    }
}

/// One session's message inside an [`Envelope`].
///
/// The payload is a [`Bytes`] view: on the send side it is the very buffer
/// the session protocol handed to its `Comm` (queued without copying), and
/// on the receive side [`EnvelopeRef`] + `Bytes::slice_ref` re-anchor it
/// into the received allocation, again without copying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionFrame {
    /// The session this payload belongs to.
    pub session: SessionId,
    /// The session protocol's encoded message, exactly as it handed it to
    /// its `Comm`.
    pub payload: Bytes,
}

impl Encode for SessionFrame {
    fn encode(&self, w: &mut Writer) {
        self.session.encode(w);
        w.put_bytes(&self.payload);
    }
    fn encoded_len(&self) -> usize {
        self.session.encoded_len()
            + Writer::varint_len(self.payload.len() as u64)
            + self.payload.len()
    }
}

impl Decode for SessionFrame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        SessionFrameRef::decode(r).map(SessionFrameRef::into_owned)
    }
}

/// Borrowed view of a [`SessionFrame`]: the payload points into the decode
/// input. The engine router decodes envelopes through this view and hands
/// each session a `Bytes::slice_ref` of the one received buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionFrameRef<'a> {
    /// The session this payload belongs to.
    pub session: SessionId,
    /// The session protocol's encoded message, borrowed from the input.
    pub payload: &'a [u8],
}

impl<'a> SessionFrameRef<'a> {
    /// Decodes one frame, borrowing the payload from the reader's input.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] from the session id or length-prefixed payload.
    pub fn decode(r: &mut Reader<'a>) -> Result<Self, CodecError> {
        Ok(SessionFrameRef {
            session: SessionId::decode(r)?,
            payload: r.get_bytes()?,
        })
    }

    /// Converts the view into an owned [`SessionFrame`] (copies the
    /// payload).
    #[must_use]
    pub fn into_owned(self) -> SessionFrame {
        SessionFrame {
            session: self.session,
            payload: Bytes::from(self.payload),
        }
    }
}

/// One transport message of the engine: a batch of session frames for one
/// destination, flushed at a round boundary.
///
/// Frames are ordered by session id (the driver emits them that way);
/// order within a session is the session's own send order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Envelope {
    /// The coalesced frames.
    pub frames: Vec<SessionFrame>,
}

impl Encode for Envelope {
    fn encode(&self, w: &mut Writer) {
        self.frames.encode(w);
    }
    fn encoded_len(&self) -> usize {
        self.frames.encoded_len()
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Envelope {
            frames: EnvelopeRef::decode(r)?
                .frames
                .into_iter()
                .map(SessionFrameRef::into_owned)
                .collect(),
        })
    }
}

/// Borrowed view of an [`Envelope`]: every frame payload points into the
/// decode input, so routing one received buffer to many session inboxes
/// allocates nothing beyond the frame table itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnvelopeRef<'a> {
    /// The coalesced frames, borrowing from the input.
    pub frames: Vec<SessionFrameRef<'a>>,
}

impl<'a> EnvelopeRef<'a> {
    /// Decodes an envelope, borrowing every payload from the reader's
    /// input. [`Reader::decode_each`] applies the same bound checks as
    /// `Vec::<SessionFrame>::decode`: the claimed frame count is
    /// validated against the bytes actually present and the codec's
    /// capacity ceiling before any allocation.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] from the count prefix or a frame.
    pub fn decode(r: &mut Reader<'a>) -> Result<Self, CodecError> {
        let frames = r.decode_each(SessionFrameRef::decode)?;
        Ok(EnvelopeRef { frames })
    }

    /// Decodes from a complete slice, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// As [`EnvelopeRef::decode`], plus [`CodecError::TrailingBytes`].
    pub fn decode_from_slice(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let env = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let env = Envelope {
            frames: vec![
                SessionFrame {
                    session: SessionId(0),
                    payload: Bytes::from(vec![1, 2, 3]),
                },
                SessionFrame {
                    session: SessionId(7),
                    payload: Bytes::new(),
                },
                SessionFrame {
                    session: SessionId(u64::MAX),
                    payload: Bytes::from(vec![0xFF; 300]),
                },
            ],
        };
        let bytes = env.encode_to_vec();
        assert_eq!(bytes.len(), env.encoded_len());
        assert_eq!(Envelope::decode_from_slice(&bytes).unwrap(), env);
    }

    /// The borrowed decode is byte-compatible with the owned one and its
    /// payloads really do point into the input buffer (the whole point).
    #[test]
    fn envelope_ref_borrows_payloads_from_input() {
        let env = Envelope {
            frames: vec![
                SessionFrame {
                    session: SessionId(2),
                    payload: Bytes::from(vec![9, 8, 7, 6]),
                },
                SessionFrame {
                    session: SessionId(5),
                    payload: Bytes::from(vec![0x42; 64]),
                },
            ],
        };
        let bytes = env.encode_to_vec();
        let view = EnvelopeRef::decode_from_slice(&bytes).unwrap();
        assert_eq!(view.frames.len(), 2);
        let base = bytes.as_ptr() as usize;
        for (frame, owned) in view.frames.iter().zip(&env.frames) {
            assert_eq!(frame.session, owned.session);
            assert_eq!(frame.payload, &owned.payload[..]);
            let p = frame.payload.as_ptr() as usize;
            assert!(p >= base && p + frame.payload.len() <= base + bytes.len());
        }
        // Trailing bytes rejected on the borrowed path too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(EnvelopeRef::decode_from_slice(&padded).is_err());
    }

    #[test]
    fn empty_envelope_round_trips() {
        let env = Envelope::default();
        assert_eq!(
            Envelope::decode_from_slice(&env.encode_to_vec()).unwrap(),
            env
        );
    }

    /// A byzantine envelope claiming a huge frame count (or frame length)
    /// fails cleanly: the codec bounds every claimed length by the bytes
    /// actually present, so no allocation proportional to the claim
    /// happens.
    #[test]
    fn huge_claimed_lengths_rejected_cleanly() {
        // Vec-of-frames length claim of ~2^60.
        let mut w = Writer::new();
        (1u64 << 60).encode(&mut w);
        assert!(Envelope::decode_from_slice(&w.into_vec()).is_err());

        // A single frame whose payload claims 2^40 bytes.
        let mut w = Writer::new();
        1u64.encode(&mut w); // one frame
        SessionId(3).encode(&mut w);
        (1u64 << 40).encode(&mut w); // payload length claim
        w.put_u8(0xAA); // …but one actual byte
        assert!(Envelope::decode_from_slice(&w.into_vec()).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Envelope::default().encode_to_vec();
        bytes.push(0);
        assert!(Envelope::decode_from_slice(&bytes).is_err());
    }
}
