//! The session-tagged wire envelope.
//!
//! One engine round produces, per destination, one (or a few — see
//! `EngineConfig::max_batch_frames`) [`Envelope`]s coalescing the round's
//! messages of *every* live session. The envelope rides the existing
//! transports unchanged: it is an opaque payload to `Comm::send_bytes`,
//! and it decodes under the usual `ca-codec` discipline — claimed lengths
//! are validated against [`ca_codec::MAX_DECODE_CAPACITY`] and the bytes
//! actually present before any allocation, so a byzantine envelope can
//! neither OOM the router nor panic it.

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

/// Identifies one agreement session within an engine deployment.
///
/// Ids are assigned by the submitting workload and must be unique for the
/// lifetime of a deployment (the engine rejects duplicates of live ids and
/// routes frames for already-reaped ids to the late-frame counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl SessionId {
    /// The trace-scope tag for this session: `s<id>`.
    #[must_use]
    pub fn scope_tag(self) -> String {
        format!("s{}", self.0)
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl Encode for SessionId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl Decode for SessionId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SessionId(u64::decode(r)?))
    }
}

/// One session's message inside an [`Envelope`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionFrame {
    /// The session this payload belongs to.
    pub session: SessionId,
    /// The session protocol's encoded message, exactly as it handed it to
    /// its `Comm`.
    pub payload: Vec<u8>,
}

impl Encode for SessionFrame {
    fn encode(&self, w: &mut Writer) {
        self.session.encode(w);
        self.payload.encode(w);
    }
    fn encoded_len(&self) -> usize {
        self.session.encoded_len() + self.payload.encoded_len()
    }
}

impl Decode for SessionFrame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SessionFrame {
            session: SessionId::decode(r)?,
            payload: Vec::decode(r)?,
        })
    }
}

/// One transport message of the engine: a batch of session frames for one
/// destination, flushed at a round boundary.
///
/// Frames are ordered by session id (the driver emits them that way);
/// order within a session is the session's own send order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Envelope {
    /// The coalesced frames.
    pub frames: Vec<SessionFrame>,
}

impl Encode for Envelope {
    fn encode(&self, w: &mut Writer) {
        self.frames.encode(w);
    }
    fn encoded_len(&self) -> usize {
        self.frames.encoded_len()
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Envelope {
            frames: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let env = Envelope {
            frames: vec![
                SessionFrame {
                    session: SessionId(0),
                    payload: vec![1, 2, 3],
                },
                SessionFrame {
                    session: SessionId(7),
                    payload: Vec::new(),
                },
                SessionFrame {
                    session: SessionId(u64::MAX),
                    payload: vec![0xFF; 300],
                },
            ],
        };
        let bytes = env.encode_to_vec();
        assert_eq!(bytes.len(), env.encoded_len());
        assert_eq!(Envelope::decode_from_slice(&bytes).unwrap(), env);
    }

    #[test]
    fn empty_envelope_round_trips() {
        let env = Envelope::default();
        assert_eq!(
            Envelope::decode_from_slice(&env.encode_to_vec()).unwrap(),
            env
        );
    }

    /// A byzantine envelope claiming a huge frame count (or frame length)
    /// fails cleanly: the codec bounds every claimed length by the bytes
    /// actually present, so no allocation proportional to the claim
    /// happens.
    #[test]
    fn huge_claimed_lengths_rejected_cleanly() {
        // Vec-of-frames length claim of ~2^60.
        let mut w = Writer::new();
        (1u64 << 60).encode(&mut w);
        assert!(Envelope::decode_from_slice(&w.into_vec()).is_err());

        // A single frame whose payload claims 2^40 bytes.
        let mut w = Writer::new();
        1u64.encode(&mut w); // one frame
        SessionId(3).encode(&mut w);
        (1u64 << 40).encode(&mut w); // payload length claim
        w.put_u8(0xAA); // …but one actual byte
        assert!(Envelope::decode_from_slice(&w.into_vec()).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Envelope::default().encode_to_vec();
        bytes.push(0);
        assert!(Envelope::decode_from_slice(&bytes).is_err());
    }
}
