//! Load generation: open-/closed-loop session workloads for the engine.
//!
//! Drives a full multi-tenant deployment over the deterministic
//! simulator: clustered `ℓ`-bit inputs per session (the paper's sensor
//! regime), a fault mix drawn from `ca-adversary` (input lies applied per
//! session, message-level strategies attacking the raw envelope layer),
//! and per-session agreement/validity checking of every decision. All
//! timing goes through the injectable [`ca_runtime::Clock`] — wall time
//! never leaks into the deterministic parts.

use ca_adversary::{Attack, LieKind};
use ca_ba::BaKind;
use ca_bits::{BitString, Nat};
use ca_core::{check_agreement, check_convex_validity, pi_n, pi_n_adaptive, FastPathConfig};
use ca_net::{max_faults, Sim};
use ca_runtime::Clock;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{run_engine_party, ArrivalMode, EngineConfig, EngineStats, SessionPlan};

/// One load scenario: how many sessions of what shape arrive how, against
/// which fault mix.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Parties per deployment.
    pub n: usize,
    /// Sessions per run.
    pub sessions: usize,
    /// Input length ℓ in bits.
    pub ell: usize,
    /// Low bits re-randomized per party (honest disagreement spread).
    pub spread_bits: usize,
    /// Open- or closed-loop arrival.
    pub mode: ArrivalMode,
    /// Rounds between arrivals in open-loop mode (0 = all at once).
    pub arrival_interval: u64,
    /// The fault mix: input lies per session and/or message-level attack
    /// on the envelope layer.
    pub attack: Attack,
    /// BA flavor the sessions run.
    pub ba: BaKind,
    /// Workload seed; per-session input seeds derive from it.
    pub seed: u64,
    /// Engine capacity/batching policy.
    pub config: EngineConfig,
    /// Fault-adaptive fast-path mode applied to every session (`None` =
    /// worst-case protocol only).
    pub fast_path: Option<FastPathConfig>,
}

impl LoadProfile {
    /// A closed-loop profile of `sessions` sessions of `ell`-bit inputs
    /// over `n` parties, no faults.
    #[must_use]
    pub fn closed(n: usize, sessions: usize, ell: usize) -> Self {
        Self {
            n,
            sessions,
            ell,
            spread_bits: ell / 4,
            mode: ArrivalMode::Closed,
            arrival_interval: 0,
            attack: Attack::none(),
            ba: BaKind::default(),
            seed: 0xCA_10AD,
            config: EngineConfig::default(),
            fast_path: None,
        }
    }
}

/// Accumulated results of one or more load runs.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Engine runs performed.
    pub runs: u64,
    /// Sessions offered across runs.
    pub sessions_submitted: u64,
    /// Sessions decided (per deployment, not per party).
    pub sessions_decided: u64,
    /// Sessions rejected by admission control.
    pub sessions_rejected: u64,
    /// Every decided session agreed across honest parties.
    pub agreement: bool,
    /// Every decision lay in its session's honest-input hull.
    pub validity: bool,
    /// Protocol payload bits across all honest parties and sessions
    /// (the simulator's `BITSℓ` metering).
    pub payload_bits: u64,
    /// Wall-clock micros measured through the injected clock; zero for
    /// untimed runs.
    pub elapsed_us: u64,
    /// Engine stats absorbed across honest parties and runs.
    pub stats: EngineStats,
}

impl LoadReport {
    /// Decided sessions per second, if this report was timed.
    #[must_use]
    pub fn sessions_per_sec(&self) -> Option<f64> {
        if self.elapsed_us == 0 {
            return None;
        }
        Some(self.sessions_decided as f64 * 1e6 / self.elapsed_us as f64)
    }

    /// Folds another report into this one.
    pub fn absorb(&mut self, other: &LoadReport) {
        let first = self.runs == 0;
        self.runs += other.runs;
        self.sessions_submitted += other.sessions_submitted;
        self.sessions_decided += other.sessions_decided;
        self.sessions_rejected += other.sessions_rejected;
        self.agreement = (first || self.agreement) && other.agreement;
        self.validity = (first || self.validity) && other.validity;
        self.payload_bits += other.payload_bits;
        self.elapsed_us += other.elapsed_us;
        self.stats.absorb(&other.stats);
    }
}

/// Splits one workload seed into independent per-purpose seeds.
#[must_use]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer: cheap, well-mixed, and dependency-free.
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Clustered honest inputs for one session: a shared random `ell`-bit
/// base whose lowest `spread_bits` bits are re-randomized per party, with
/// the attack's input lies applied to corrupted parties.
#[must_use]
pub fn session_inputs(
    seed: u64,
    n: usize,
    t: usize,
    ell: usize,
    spread_bits: usize,
    attack: &Attack,
) -> Vec<Nat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let base = BitString::from_bits((0..ell).map(|_| rng.gen::<bool>()));
    let mut inputs: Vec<Nat> = (0..n)
        .map(|_| {
            let mut v = base.clone();
            if ell > 0 {
                v.set(0, true);
            }
            let spread = spread_bits.min(ell.saturating_sub(1));
            for i in ell - spread..ell {
                let b = rng.gen::<bool>();
                v.set(i, b);
            }
            v.val()
        })
        .collect();
    if attack.is_lying() {
        for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
            inputs[p.index()] = match attack.lie_for(idx).expect("lying attack") {
                LieKind::ExtremeHigh => Nat::all_ones(ell),
                LieKind::ExtremeLow => Nat::zero(),
                LieKind::Split => unreachable!("lie_for resolves Split"),
            };
        }
    }
    inputs
}

/// The arrival plan a profile describes.
#[must_use]
pub fn plan_of(profile: &LoadProfile) -> SessionPlan {
    let plan = match profile.mode {
        ArrivalMode::Closed => SessionPlan::closed(profile.sessions),
        ArrivalMode::Open => SessionPlan::open(
            (0..profile.sessions as u64).map(|i| (i, i * profile.arrival_interval)),
        ),
    };
    match profile.fast_path {
        Some(cfg) => plan.with_fast_path(cfg),
        None => plan,
    }
}

/// Runs one engine deployment for the profile (untimed) and checks every
/// decided session for agreement and convex validity.
#[must_use]
pub fn run_load(profile: &LoadProfile) -> LoadReport {
    run_load_seeded(profile, profile.seed)
}

fn run_load_seeded(profile: &LoadProfile, seed: u64) -> LoadReport {
    let n = profile.n;
    let t = max_faults(n);
    let plan = plan_of(profile);
    let inputs: Vec<Vec<Nat>> = (0..profile.sessions as u64)
        .map(|sid| {
            session_inputs(
                derive_seed(seed, sid),
                n,
                t,
                profile.ell,
                profile.spread_bits,
                &profile.attack,
            )
        })
        .collect();

    let modes: std::collections::BTreeMap<u64, Option<FastPathConfig>> = plan
        .sessions
        .iter()
        .map(|s| (s.id.0, s.fast_path))
        .collect();
    let sim = profile.attack.install(Sim::new(n), n, t);
    let report = sim.run(|ctx, _id| {
        run_engine_party(ctx, &plan, &profile.config, |sctx, sid| {
            let input = inputs[sid.0 as usize][sctx.me().index()].clone();
            match modes.get(&sid.0).copied().flatten() {
                Some(cfg) => pi_n_adaptive(sctx, &input, profile.ba, cfg),
                None => pi_n(sctx, &input, profile.ba),
            }
        })
    });

    let honest = report.honest_parties();
    let outputs = report.honest_outputs();
    let mut agreement = true;
    let mut validity = true;
    let first = outputs.first().expect("at least one honest party");
    for (sid, _) in &first.decided {
        let decisions: Vec<Nat> = outputs
            .iter()
            .filter_map(|out| out.output_of(*sid).cloned())
            .collect();
        agreement &= decisions.len() == outputs.len() && check_agreement(&decisions);
        let honest_inputs: Vec<Nat> = honest
            .iter()
            .map(|p| inputs[sid.0 as usize][p.index()].clone())
            .collect();
        validity &= check_convex_validity(&decisions, &honest_inputs);
    }

    let mut stats = EngineStats::default();
    for out in &outputs {
        stats.absorb(&out.stats);
    }
    // Engine rounds are lock-step identical across parties; absorbing
    // summed them, so normalize back to the per-deployment count.
    stats.engine_rounds /= outputs.len() as u64;

    LoadReport {
        runs: 1,
        sessions_submitted: profile.sessions as u64,
        sessions_decided: first.decided.len() as u64,
        sessions_rejected: first.rejected.len() as u64,
        agreement,
        validity,
        payload_bits: report.metrics.honest_bits,
        elapsed_us: 0,
        stats,
    }
}

/// Runs one deployment, timing it through `clock`.
#[must_use]
pub fn run_load_timed(profile: &LoadProfile, clock: &dyn Clock) -> LoadReport {
    let start = clock.now();
    let mut report = run_load(profile);
    report.elapsed_us = (clock.now() - start).as_micros() as u64;
    report
}

/// Closed-loop driving: repeats deployments (fresh derived seed each
/// run) until `duration` has elapsed on `clock`; always completes at
/// least one run.
#[must_use]
pub fn run_closed_loop_for(
    profile: &LoadProfile,
    duration: std::time::Duration,
    clock: &dyn Clock,
) -> LoadReport {
    let start = clock.now();
    let mut total = LoadReport::default();
    let mut run = 0u64;
    loop {
        let run_start = clock.now();
        let mut one = run_load_seeded(profile, derive_seed(profile.seed, 0x1000 + run));
        one.elapsed_us = (clock.now() - run_start).as_micros() as u64;
        total.absorb(&one);
        run += 1;
        if clock.now() - start >= duration {
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_adversary::AttackKind;
    use ca_runtime::ManualClock;

    #[test]
    fn honest_load_decides_all_sessions_correctly() {
        let profile = LoadProfile::closed(4, 6, 48);
        let report = run_load(&profile);
        assert_eq!(report.sessions_decided, 6);
        assert_eq!(report.sessions_rejected, 0);
        assert!(report.agreement && report.validity);
        assert!(report.payload_bits > 0);
        assert!(report.stats.wire_bits > 0);
        assert_eq!(report.sessions_per_sec(), None, "untimed");
    }

    #[test]
    fn faulted_load_stays_correct() {
        for kind in [
            AttackKind::Garbage,
            AttackKind::Lying(LieKind::Split),
            AttackKind::Crash,
        ] {
            let mut profile = LoadProfile::closed(4, 4, 40);
            profile.attack = Attack::new(kind).with_seed(11);
            let report = run_load(&profile);
            assert_eq!(report.sessions_decided, 4, "{kind:?}");
            assert!(report.agreement && report.validity, "{kind:?}");
        }
    }

    #[test]
    fn adaptive_sessions_decide_correctly_and_cheaper() {
        let mut adaptive = LoadProfile::closed(4, 4, 48);
        adaptive.spread_bits = 0; // unanimous inputs: fast path certifies
        adaptive.fast_path = Some(FastPathConfig::default());
        let fast = run_load(&adaptive);
        assert_eq!(fast.sessions_decided, 4);
        assert!(fast.agreement && fast.validity);

        let mut worst = adaptive.clone();
        worst.fast_path = None;
        let slow = run_load(&worst);
        assert!(slow.agreement && slow.validity);
        assert!(
            fast.payload_bits * 2 <= slow.payload_bits,
            "adaptive {} bits vs worst-case {}",
            fast.payload_bits,
            slow.payload_bits
        );
    }

    #[test]
    fn adaptive_faulted_load_stays_correct() {
        for kind in [AttackKind::Garbage, AttackKind::Crash] {
            let mut profile = LoadProfile::closed(4, 3, 40);
            profile.attack = Attack::new(kind).with_seed(13);
            profile.fast_path = Some(FastPathConfig::default());
            let report = run_load(&profile);
            assert_eq!(report.sessions_decided, 3, "{kind:?}");
            assert!(report.agreement && report.validity, "{kind:?}");
        }
    }

    #[test]
    fn open_loop_staggers_and_sheds() {
        let mut profile = LoadProfile::closed(4, 6, 32);
        profile.mode = ArrivalMode::Open;
        profile.arrival_interval = 0;
        profile.config.max_sessions = 4;
        let report = run_load(&profile);
        assert_eq!(report.sessions_decided, 4);
        assert_eq!(report.sessions_rejected, 2);
        assert!(report.agreement && report.validity);
    }

    /// The closed-loop driver is governed by the injected clock alone:
    /// with a manual clock advanced 1 s per run, a 3 s budget yields
    /// exactly three runs — never a wall-clock-dependent count.
    #[test]
    fn closed_loop_respects_injected_clock() {
        struct StepClock(ManualClock);
        impl Clock for StepClock {
            fn now(&self) -> std::time::Duration {
                // Each observation ticks 250 ms: 4 observations per run
                // (loop start is one more) ≈ 1 s of "work" per run.
                self.0.advance(std::time::Duration::from_millis(250));
                self.0.now()
            }
        }
        let profile = LoadProfile::closed(4, 2, 24);
        let clock = StepClock(ManualClock::new());
        let report = run_closed_loop_for(&profile, std::time::Duration::from_secs(3), &clock);
        assert!(
            (3..=5).contains(&report.runs),
            "clock-driven run count, got {}",
            report.runs
        );
        assert_eq!(report.sessions_decided, 2 * report.runs);
    }

    #[test]
    fn derive_seed_streams_are_distinct() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(derive_seed(1, 0), a);
    }
}
