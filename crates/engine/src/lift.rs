//! Lifting single-instance adversaries to the envelope layer.
//!
//! The equivalence story of the engine needs the *same* byzantine
//! strategy to attack a session whether it runs isolated or multiplexed.
//! [`EnvelopeAdversary`] makes that precise: it holds one inner
//! [`Adversary`] per session, presents each with exactly the per-session
//! rushing view it would see in an isolated run (by unpacking honest
//! envelope traffic), and re-wraps every injected message as a
//! single-frame envelope for that session.
//!
//! Assumes all sessions are admitted at engine round 0 (engine round =
//! session round), which is how the equivalence tests run it. Adaptive
//! corruption requests are unioned across sessions; strategies whose
//! victim choice is deterministic (e.g. `AdaptiveGarbage` picks the
//! lowest-id honest party) therefore agree and the union stays within
//! budget.

use std::collections::BTreeMap;

use bytes::Bytes;
use ca_codec::{Decode as _, Encode as _};
use ca_net::{Adversary, PartyId, RoundActions, RoundView, SendSpec};

use crate::{Envelope, SessionFrame, SessionId};

/// Per-session adversaries attacking through the envelope layer.
pub struct EnvelopeAdversary {
    inner: BTreeMap<u64, Box<dyn Adversary>>,
}

impl std::fmt::Debug for EnvelopeAdversary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnvelopeAdversary")
            .field("sessions", &self.inner.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl EnvelopeAdversary {
    /// One inner adversary per session id.
    #[must_use]
    pub fn new(sessions: impl IntoIterator<Item = (SessionId, Box<dyn Adversary>)>) -> Self {
        Self {
            inner: sessions
                .into_iter()
                .map(|(sid, adv)| (sid.0, adv))
                .collect(),
        }
    }
}

impl Adversary for EnvelopeAdversary {
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
        // Unpack honest envelope traffic into per-session views, keeping
        // the executor's ordering (by sender, then send order) so inner
        // strategies observe exactly what an isolated run would show them.
        let mut per_session: BTreeMap<u64, Vec<(PartyId, PartyId, Bytes)>> =
            self.inner.keys().map(|sid| (*sid, Vec::new())).collect();
        for (from, to, payload) in view.honest_sends {
            let Ok(env) = Envelope::decode_from_slice(payload) else {
                continue;
            };
            for frame in env.frames {
                if let Some(sends) = per_session.get_mut(&frame.session.0) {
                    sends.push((*from, *to, frame.payload));
                }
            }
        }

        let mut actions = RoundActions::default();
        for (sid, adv) in &mut self.inner {
            let honest_sends = &per_session[sid];
            let sub_view = RoundView {
                n: view.n,
                t: view.t,
                round: view.round,
                corrupted: view.corrupted,
                honest_sends,
            };
            let sub = adv.on_round(&sub_view);
            for p in sub.corrupt {
                if !actions.corrupt.contains(&p) {
                    actions.corrupt.push(p);
                }
            }
            for send in sub.sends {
                let env = Envelope {
                    frames: vec![SessionFrame {
                        session: SessionId(*sid),
                        payload: send.payload.clone(),
                    }],
                };
                actions.sends.push(SendSpec {
                    from: send.from,
                    to: send.to,
                    payload: Bytes::from(env.encode_to_vec()),
                });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_net::Silent;

    /// An asserting inner adversary: checks it sees exactly the isolated
    /// per-session view, and echoes one send per round.
    struct Probe {
        expect: Vec<(PartyId, PartyId, Vec<u8>)>,
    }

    impl Adversary for Probe {
        fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
            let got: Vec<(PartyId, PartyId, Vec<u8>)> = view
                .honest_sends
                .iter()
                .map(|(f, t, p)| (*f, *t, p.to_vec()))
                .collect();
            assert_eq!(got, self.expect, "inner adversary sees unpacked view");
            RoundActions {
                corrupt: Vec::new(),
                sends: vec![SendSpec {
                    from: PartyId(2),
                    to: PartyId(0),
                    payload: Bytes::from_static(b"\x01\x02"),
                }],
            }
        }
    }

    #[test]
    fn unpacks_envelopes_per_session_and_rewraps_sends() {
        let probe = Probe {
            expect: vec![(PartyId(0), PartyId(1), vec![0xBB, 0xCC])],
        };
        let mut lift = EnvelopeAdversary::new([
            (SessionId(0), Box::new(Silent) as Box<dyn Adversary>),
            (SessionId(1), Box::new(probe) as Box<dyn Adversary>),
        ]);

        // One honest envelope from P0 to P1 carrying frames of both
        // sessions, plus one non-envelope payload that must be ignored.
        let env = Envelope {
            frames: vec![
                SessionFrame {
                    session: SessionId(0),
                    payload: Bytes::from(vec![0xAA]),
                },
                SessionFrame {
                    session: SessionId(1),
                    payload: Bytes::from(vec![0xBB, 0xCC]),
                },
            ],
        };
        let honest = vec![
            (PartyId(0), PartyId(1), Bytes::from(env.encode_to_vec())),
            (PartyId(1), PartyId(0), Bytes::from_static(b"junk")),
        ];
        let view = RoundView {
            n: 3,
            t: 1,
            round: 0,
            corrupted: &[PartyId(2)],
            honest_sends: &honest,
        };
        let actions = lift.on_round(&view);

        // The probe's send came back wrapped as a session-1 envelope.
        assert_eq!(actions.sends.len(), 1);
        let spec = &actions.sends[0];
        assert_eq!((spec.from, spec.to), (PartyId(2), PartyId(0)));
        let rewrapped = Envelope::decode_from_slice(&spec.payload).unwrap();
        assert_eq!(
            rewrapped.frames,
            vec![SessionFrame {
                session: SessionId(1),
                payload: Bytes::from(vec![1, 2]),
            }]
        );
    }
}
