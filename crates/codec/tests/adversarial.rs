//! Adversarial decode properties: arbitrary byte streams must never panic
//! the decoder and must never trigger allocations beyond what the input
//! itself can justify.

use ca_codec::{Decode, Encode, Reader, MAX_DECODE_CAPACITY};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoding random bytes as any wire type returns Ok or CodecError,
    /// never panics (the test harness would turn a panic into a failure).
    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = bool::decode_from_slice(&data);
        let _ = u8::decode_from_slice(&data);
        let _ = u16::decode_from_slice(&data);
        let _ = u32::decode_from_slice(&data);
        let _ = u64::decode_from_slice(&data);
        let _ = i64::decode_from_slice(&data);
        let _ = usize::decode_from_slice(&data);
        let _ = String::decode_from_slice(&data);
        let _ = <[u8; 32]>::decode_from_slice(&data);
        let _ = Option::<u64>::decode_from_slice(&data);
        let _ = Vec::<u8>::decode_from_slice(&data);
        let _ = Vec::<u64>::decode_from_slice(&data);
        let _ = Vec::<Vec<u8>>::decode_from_slice(&data);
        let _ = <(u64, Vec<u8>, bool)>::decode_from_slice(&data);
    }

    /// A successfully decoded collection can never hold more elements than
    /// the input had bytes: allocation is bounded by real input, not by the
    /// attacker's claimed length.
    #[test]
    fn decoded_collections_bounded_by_input(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(v) = Vec::<u8>::decode_from_slice(&data) {
            prop_assert!(v.len() <= data.len());
            prop_assert!(v.len() <= MAX_DECODE_CAPACITY);
        }
        if let Ok(v) = Vec::<u64>::decode_from_slice(&data) {
            prop_assert!(v.len() <= data.len());
        }
        if let Ok(s) = String::decode_from_slice(&data) {
            prop_assert!(s.len() <= data.len());
        }
    }

    /// A reader over random bytes makes progress and terminates no matter
    /// how get_* calls interleave; consumed bytes never exceed the input.
    #[test]
    fn reader_never_reads_past_input(
        data in proptest::collection::vec(any::<u8>(), 0..128),
        ops in proptest::collection::vec(0u8..4, 0..32),
    ) {
        let mut r = Reader::new(&data);
        for op in ops {
            let before = r.remaining();
            let _ = match op {
                0 => r.get_u8().map(|_| ()),
                1 => r.get_varint().map(|_| ()),
                2 => r.get_bytes().map(|_| ()),
                _ => r.get_raw(3).map(|_| ()),
            };
            prop_assert!(r.remaining() <= before);
            prop_assert!(r.remaining() <= data.len());
        }
    }

    /// Round trips: encode → decode is the identity, and the encoding's
    /// length matches encoded_len exactly.
    #[test]
    fn vec_u64_round_trips(v in proptest::collection::vec(any::<u64>(), 0..64)) {
        let bytes = v.encode_to_vec();
        prop_assert_eq!(bytes.len(), v.encoded_len());
        let back = Vec::<u64>::decode_from_slice(&bytes);
        prop_assert_eq!(back.as_ref().ok(), Some(&v));
    }

    #[test]
    fn nested_tuple_round_trips(a in any::<u64>(), b in proptest::collection::vec(any::<u8>(), 0..64), c in any::<bool>()) {
        let v = (a, b, c);
        let bytes = v.encode_to_vec();
        prop_assert_eq!(bytes.len(), v.encoded_len());
        let back = <(u64, Vec<u8>, bool)>::decode_from_slice(&bytes);
        prop_assert_eq!(back.ok(), Some(v));
    }

    /// Truncating a valid encoding anywhere strictly inside it must fail
    /// cleanly (no panic, no bogus success for self-delimiting types).
    #[test]
    fn truncation_fails_cleanly(v in proptest::collection::vec(any::<u64>(), 1..32), cut in any::<u64>()) {
        let bytes = v.encode_to_vec();
        let cut = (cut as usize) % bytes.len();
        let res = Vec::<u64>::decode_from_slice(&bytes[..cut]);
        prop_assert!(res.is_err());
    }
}
