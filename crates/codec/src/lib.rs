//! Deterministic wire codec for the convex-agreement protocol suite.
//!
//! Every message that crosses the (simulated or real) network is encoded with
//! this codec. Two properties matter for a byzantine-fault-tolerant protocol:
//!
//! 1. **Determinism** — the same value always encodes to the same bytes, so
//!    hashes of encodings are well-defined and communication accounting is
//!    exact.
//! 2. **Robustness** — decoding never panics and never allocates unbounded
//!    memory on adversarial input; malformed bytes yield a [`CodecError`],
//!    which protocols treat as "no message received".
//!
//! The format is a simple little-endian binary layout with LEB128 varints for
//! lengths. There is no self-description: both sides must agree on the type,
//! which is always the case inside a lock-step synchronous protocol.
//!
//! # Examples
//!
//! ```
//! use ca_codec::{Decode, Encode};
//!
//! # fn main() -> Result<(), ca_codec::CodecError> {
//! let msg = (42u64, vec![1u8, 2, 3], true);
//! let bytes = msg.encode_to_vec();
//! let back = <(u64, Vec<u8>, bool)>::decode_from_slice(&bytes)?;
//! assert_eq!(back, msg);
//! # Ok(())
//! # }
//! ```

mod error;
mod reader;
mod writer;

pub use error::CodecError;
pub use reader::Reader;
pub use writer::Writer;

/// Hard ceiling on any single decoder-side collection length.
///
/// A decoded length prefix larger than this fails with
/// [`CodecError::CapacityExceeded`] before any allocation happens. The value
/// is deliberately above every legitimate protocol message (inputs are split
/// into `O(ℓ/n + κ·n·log n)`-bit shares, far below this) and below anything
/// that could pressure memory: even a worst-case `Vec<u64>` preallocation at
/// this length stays under 129 MiB.
pub const MAX_DECODE_CAPACITY: usize = 16 << 20;

/// Types that can be deterministically serialized to bytes.
///
/// Implementations must be *canonical*: equal values produce identical byte
/// strings. This is relied upon when hashing encodings (Merkle leaves,
/// `Π_BA+` inputs) and when counting communication bits.
pub trait Encode {
    /// Appends the encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes into a fresh `Vec<u8>`.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_vec()
    }

    /// The exact number of bytes [`Self::encode`] will produce.
    ///
    /// The default implementation encodes and measures; types on hot paths
    /// override it.
    fn encoded_len(&self) -> usize {
        self.encode_to_vec().len()
    }
}

/// Types that can be decoded from bytes produced by [`Encode`].
///
/// Decoding adversarial bytes must fail cleanly with a [`CodecError`]; it must
/// not panic or allocate proportionally to attacker-claimed (rather than
/// actually present) lengths.
pub trait Decode: Sized {
    /// Reads one value from `r`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the bytes are truncated or malformed.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Decodes a value that must occupy the *entire* slice.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::TrailingBytes`] if the slice is longer than the
    /// encoding, in addition to the errors of [`Self::decode`].
    fn decode_from_slice(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::InvalidDiscriminant {
                type_name: "bool",
                value: u64::from(other),
            }),
        }
    }
}

impl Encode for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u8()
    }
}

macro_rules! impl_varint {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.put_varint(u64::from(*self));
            }
            fn encoded_len(&self) -> usize {
                Writer::varint_len(u64::from(*self))
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                let raw = r.get_varint()?;
                <$ty>::try_from(raw).map_err(|_| CodecError::VarintRange {
                    type_name: stringify!($ty),
                    value: raw,
                })
            }
        }
    )*};
}

impl_varint!(u16, u32, u64);

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
    fn encoded_len(&self) -> usize {
        Writer::varint_len(*self as u64)
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let raw = r.get_varint()?;
        usize::try_from(raw).map_err(|_| CodecError::VarintRange {
            type_name: "usize",
            value: raw,
        })
    }
}

/// Signed integers use zigzag encoding so small magnitudes stay small.
impl Encode for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(zigzag_encode(*self));
    }
    fn encoded_len(&self) -> usize {
        Writer::varint_len(zigzag_encode(*self))
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(zigzag_decode(r.get_varint()?))
    }
}

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(CodecError::InvalidDiscriminant {
                type_name: "Option",
                value: u64::from(other),
            }),
        }
    }
}

/// Length-prefixed sequence. Decoding caps preallocation at the number of
/// bytes actually remaining, so a forged length cannot cause a huge
/// allocation.
impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn encoded_len(&self) -> usize {
        Writer::varint_len(self.len() as u64) + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.decode_each(T::decode)
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        Writer::varint_len(self.len() as u64) + self.len()
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = r.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }
}

impl Encode for () {
    fn encode(&self, _w: &mut Writer) {}
    fn encoded_len(&self) -> usize {
        0
    }
}

impl Decode for () {
    fn decode(_r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, w: &mut Writer) {
                $(self.$idx.encode(w);)+
            }
            fn encoded_len(&self) -> usize {
                0 $(+ self.$idx.encoded_len())+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(self);
    }
    fn encoded_len(&self) -> usize {
        N
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let slice = r.get_raw(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.encode_to_vec();
        assert_eq!(bytes.len(), v.encoded_len(), "encoded_len mismatch");
        let back = T::decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(true);
        round_trip(false);
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(300u16);
        round_trip(77usize);
        round_trip(-1i64);
        round_trip(i64::MIN);
        round_trip(i64::MAX);
        round_trip(());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u8, 2, 3]);
        round_trip(Vec::<u8>::new());
        round_trip(vec![10u64, 20, 30]);
        round_trip(Some(9u64));
        round_trip(Option::<u64>::None);
        round_trip(String::from("hello Π_BA+"));
        round_trip((1u64, vec![4u8, 5], false));
        round_trip([7u8; 32]);
    }

    #[test]
    fn bool_rejects_junk() {
        assert!(bool::decode_from_slice(&[2]).is_err());
    }

    #[test]
    fn option_rejects_junk_discriminant() {
        assert!(Option::<u64>::decode_from_slice(&[9, 1]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u64.encode_to_vec();
        bytes.push(0);
        assert!(matches!(
            u64::decode_from_slice(&bytes),
            Err(CodecError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn forged_vec_length_does_not_allocate() {
        // Claims 2^60 elements but provides none.
        let mut w = Writer::new();
        w.put_varint(1 << 60);
        let err = Vec::<u64>::decode_from_slice(&w.into_vec()).unwrap_err();
        assert!(matches!(err, CodecError::LengthOverrun { .. }));
    }

    #[test]
    fn over_capacity_length_rejected_even_when_bytes_present() {
        // A length that really is backed by input bytes, but exceeds the
        // decoder's hard ceiling: must fail with CapacityExceeded, not
        // allocate MAX+1 elements.
        let claimed = MAX_DECODE_CAPACITY + 1;
        let mut w = Writer::new();
        w.put_varint(claimed as u64);
        let mut bytes = w.into_vec();
        bytes.resize(bytes.len() + claimed, 0);
        let err = Vec::<u8>::decode_from_slice(&bytes).unwrap_err();
        assert_eq!(
            err,
            CodecError::CapacityExceeded {
                requested: claimed,
                limit: MAX_DECODE_CAPACITY,
            }
        );
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = (1u64, 2u64).encode_to_vec();
        assert!(<(u64, u64)>::decode_from_slice(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn varint_range_enforced() {
        let bytes = (u64::from(u16::MAX) + 1).encode_to_vec();
        assert!(matches!(
            u16::decode_from_slice(&bytes),
            Err(CodecError::VarintRange { .. })
        ));
    }

    #[test]
    fn zigzag_is_order_preserving_for_small_magnitudes() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_decode(zigzag_encode(-123_456)), -123_456);
    }
}
