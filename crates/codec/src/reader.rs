//! Cursor over received bytes with bounds-checked accessors.

use crate::CodecError;

/// Read cursor used by [`Decode`](crate::Decode) implementations.
///
/// All accessors are bounds-checked and return [`CodecError`] instead of
/// panicking, since input bytes may come from corrupted parties.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Borrows the unconsumed tail of the input without advancing.
    ///
    /// Zero-copy decoders use this to capture the exact byte span a value
    /// was decoded from (pair it with [`Reader::remaining`] before/after).
    pub fn rest(&self) -> &'a [u8] {
        self.bytes.get(self.pos..).unwrap_or(&[])
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the input is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        let byte = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or(CodecError::UnexpectedEof {
                needed: 1,
                available: 0,
            })?;
        self.pos += 1;
        Ok(byte)
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end))
            .ok_or(CodecError::UnexpectedEof {
                needed: n,
                available: self.remaining(),
            })?;
        self.pos += n;
        Ok(slice)
    }

    /// Reads a varint length prefix and then that many bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or if the claimed length exceeds the
    /// remaining bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_varint()?;
        let len = usize::try_from(len).map_err(|_| CodecError::VarintRange {
            type_name: "usize",
            value: len,
        })?;
        if len > self.remaining() {
            return Err(CodecError::LengthOverrun {
                claimed: len,
                available: self.remaining(),
            });
        }
        self.get_raw(len)
    }

    /// Decodes a length-prefixed sequence, reading each element with `f`.
    ///
    /// Applies the standard sequence bound checks before any allocation:
    /// an element encodes to ≥ 1 byte, so the claimed count may not
    /// exceed the remaining byte count, nor
    /// [`MAX_DECODE_CAPACITY`](crate::MAX_DECODE_CAPACITY). Unlike the
    /// blanket `Vec<T: Decode>` impl, `f` may return values that borrow
    /// from the reader's input, which zero-copy decoders rely on.
    ///
    /// # Errors
    ///
    /// [`CodecError`] from the count prefix, the bound checks, or any
    /// element.
    pub fn decode_each<T>(
        &mut self,
        mut f: impl FnMut(&mut Reader<'a>) -> Result<T, CodecError>,
    ) -> Result<Vec<T>, CodecError> {
        let len = self.get_varint()?;
        let len = usize::try_from(len).map_err(|_| CodecError::VarintRange {
            type_name: "usize",
            value: len,
        })?;
        if len > self.remaining() {
            return Err(CodecError::LengthOverrun {
                claimed: len,
                available: self.remaining(),
            });
        }
        if len > crate::MAX_DECODE_CAPACITY {
            return Err(CodecError::CapacityExceeded {
                requested: len,
                limit: crate::MAX_DECODE_CAPACITY,
            });
        }
        let mut out = Vec::with_capacity(len.min(crate::MAX_DECODE_CAPACITY));
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// Only the minimal encoding of each value is accepted: a multi-byte
    /// varint whose final byte is `0x00` carries no payload bits and exists
    /// only as a redundant spelling of a shorter encoding.
    ///
    /// # Errors
    ///
    /// [`CodecError::VarintOverflow`] if the varint does not fit in 64 bits,
    /// [`CodecError::NonCanonicalVarint`] if the encoding is not minimal,
    /// or [`CodecError::UnexpectedEof`] on truncation.
    pub fn get_varint(&mut self) -> Result<u64, CodecError> {
        let mut result: u64 = 0;
        for i in 0..10 {
            let byte = self.get_u8()?;
            let payload = u64::from(byte & 0x7f);
            if i == 9 && payload > 1 {
                return Err(CodecError::VarintOverflow);
            }
            result |= payload << (7 * i);
            if byte & 0x80 == 0 {
                if payload == 0 && i > 0 {
                    return Err(CodecError::NonCanonicalVarint);
                }
                return Ok(result);
            }
        }
        Err(CodecError::VarintOverflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_reported_with_counts() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.get_raw(3).unwrap_err();
        assert_eq!(
            err,
            CodecError::UnexpectedEof {
                needed: 3,
                available: 2
            }
        );
    }

    #[test]
    fn varint_overflow_detected() {
        // 11 continuation bytes.
        let bytes = [0xff; 11];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_varint().unwrap_err(), CodecError::VarintOverflow);
    }

    #[test]
    fn varint_64bit_boundary() {
        // u64::MAX encodes as 9 * 0xff + 0x01.
        let mut bytes = vec![0xff; 9];
        bytes.push(0x01);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_varint().unwrap(), u64::MAX);

        // Tenth byte with payload 2 would be the 65th bit.
        let mut bytes = vec![0xff; 9];
        bytes.push(0x02);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_varint().unwrap_err(), CodecError::VarintOverflow);
    }

    #[test]
    fn varint_rejects_non_minimal_encodings() {
        // `0x80 0x00` is a two-byte spelling of 0; only `0x00` is canonical.
        for bytes in [
            &[0x80, 0x00][..],
            &[0xff, 0x00][..],
            &[0x80, 0x80, 0x00][..],
            // 127 padded to two bytes.
            &[0xff, 0x80, 0x00][..],
            // u64::MAX low bits with a redundant zero terminator in byte 10.
            &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x00][..],
        ] {
            let mut r = Reader::new(bytes);
            assert_eq!(
                r.get_varint().unwrap_err(),
                CodecError::NonCanonicalVarint,
                "bytes = {bytes:02x?}"
            );
        }

        // The single-byte encoding of 0 stays valid.
        let mut r = Reader::new(&[0x00]);
        assert_eq!(r.get_varint().unwrap(), 0);
        // A final byte of 0x01 (e.g. value 128) is minimal.
        let mut r = Reader::new(&[0x80, 0x01]);
        assert_eq!(r.get_varint().unwrap(), 128);
    }

    #[test]
    fn varint_boundary_encodings_stay_canonical() {
        // Every power-of-two boundary round-trips through the writer's
        // minimal encoding and is accepted.
        use crate::Writer;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for v in [v - 1, v, v.wrapping_add(1)] {
                let mut w = Writer::new();
                w.put_varint(v);
                let bytes = w.into_vec();
                let mut r = Reader::new(&bytes);
                assert_eq!(r.get_varint().unwrap(), v, "v = {v}");
                // Padding the same value with a continuation bit + 0x00 is
                // rejected.
                let mut padded = bytes.clone();
                *padded.last_mut().unwrap() |= 0x80;
                padded.push(0x00);
                if padded.len() <= 10 {
                    let mut r = Reader::new(&padded);
                    assert_eq!(
                        r.get_varint().unwrap_err(),
                        CodecError::NonCanonicalVarint,
                        "padded v = {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn get_bytes_rejects_forged_length() {
        // varint 100 followed by only 1 byte.
        let bytes = [100, 0];
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_bytes().unwrap_err(),
            CodecError::LengthOverrun { .. }
        ));
    }
}
