//! Cursor over received bytes with bounds-checked accessors.

use crate::CodecError;

/// Read cursor used by [`Decode`](crate::Decode) implementations.
///
/// All accessors are bounds-checked and return [`CodecError`] instead of
/// panicking, since input bytes may come from corrupted parties.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the input is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        let byte = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or(CodecError::UnexpectedEof {
                needed: 1,
                available: 0,
            })?;
        self.pos += 1;
        Ok(byte)
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end))
            .ok_or(CodecError::UnexpectedEof {
                needed: n,
                available: self.remaining(),
            })?;
        self.pos += n;
        Ok(slice)
    }

    /// Reads a varint length prefix and then that many bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or if the claimed length exceeds the
    /// remaining bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_varint()?;
        let len = usize::try_from(len).map_err(|_| CodecError::VarintRange {
            type_name: "usize",
            value: len,
        })?;
        if len > self.remaining() {
            return Err(CodecError::LengthOverrun {
                claimed: len,
                available: self.remaining(),
            });
        }
        self.get_raw(len)
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`CodecError::VarintOverflow`] if the varint does not fit in 64 bits,
    /// or [`CodecError::UnexpectedEof`] on truncation.
    pub fn get_varint(&mut self) -> Result<u64, CodecError> {
        let mut result: u64 = 0;
        for i in 0..10 {
            let byte = self.get_u8()?;
            let payload = u64::from(byte & 0x7f);
            if i == 9 && payload > 1 {
                return Err(CodecError::VarintOverflow);
            }
            result |= payload << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(result);
            }
        }
        Err(CodecError::VarintOverflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_reported_with_counts() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.get_raw(3).unwrap_err();
        assert_eq!(
            err,
            CodecError::UnexpectedEof {
                needed: 3,
                available: 2
            }
        );
    }

    #[test]
    fn varint_overflow_detected() {
        // 11 continuation bytes.
        let bytes = [0xff; 11];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_varint().unwrap_err(), CodecError::VarintOverflow);
    }

    #[test]
    fn varint_64bit_boundary() {
        // u64::MAX encodes as 9 * 0xff + 0x01.
        let mut bytes = vec![0xff; 9];
        bytes.push(0x01);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_varint().unwrap(), u64::MAX);

        // Tenth byte with payload 2 would be the 65th bit.
        let mut bytes = vec![0xff; 9];
        bytes.push(0x02);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_varint().unwrap_err(), CodecError::VarintOverflow);
    }

    #[test]
    fn get_bytes_rejects_forged_length() {
        // varint 100 followed by only 1 byte.
        let bytes = [100, 0];
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_bytes().unwrap_err(),
            CodecError::LengthOverrun { .. }
        ));
    }
}
