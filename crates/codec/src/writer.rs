//! Byte-buffer writer with varint support.

/// Append-only byte buffer used by [`Encode`](crate::Encode) implementations.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            // ca-lint: allow(unbounded-alloc) — encoder capacity is locally computed, not wire input
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a varint length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.put_raw(bytes);
    }

    /// Appends an unsigned LEB128 varint (1–10 bytes).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8; // ca-lint: allow(wire-cast) — masked to 7 bits
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Number of bytes [`Writer::put_varint`] emits for `v`.
    pub fn varint_len(v: u64) -> usize {
        if v == 0 {
            1
        } else {
            // ca-lint: allow(wire-cast) — u32 → usize is widening on all supported targets
            (64 - v.leading_zeros() as usize).div_ceil(7)
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reader;

    #[test]
    fn varint_len_matches_encoding() {
        for &v in &[0u64, 1, 127, 128, 16_383, 16_384, u64::MAX, 1 << 35] {
            let mut w = Writer::new();
            w.put_varint(v);
            assert_eq!(w.len(), Writer::varint_len(v), "v = {v}");
        }
    }

    #[test]
    fn varint_round_trip_boundaries() {
        for shift in 0..64 {
            let v = 1u64 << shift;
            for v in [v - 1, v, v.wrapping_add(1)] {
                let mut w = Writer::new();
                w.put_varint(v);
                let bytes = w.into_vec();
                let mut r = Reader::new(&bytes);
                assert_eq!(r.get_varint().unwrap(), v);
                assert!(r.is_empty());
            }
        }
    }
}
