//! Codec error type.

use std::error::Error;
use std::fmt;

/// Error produced when decoding malformed or truncated bytes.
///
/// Protocol code treats any decode failure on a received message as "the
/// sender did not send a well-formed message", which in the byzantine model
/// is indistinguishable from silence.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before the value was fully decoded.
    UnexpectedEof {
        /// Bytes needed to make progress.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A LEB128 varint used more than 10 bytes or had a set bit beyond 64.
    VarintOverflow,
    /// A LEB128 varint was not minimally encoded (e.g. `0x80 0x00` for 0).
    ///
    /// Accepting redundant encodings would let two distinct byte strings
    /// decode to equal values, breaking the re-encode cross-checks that
    /// `Π_ℓBA+` and byte-determinism diffing rely on.
    NonCanonicalVarint,
    /// A decoded varint does not fit the target integer type.
    VarintRange {
        /// Target type name.
        type_name: &'static str,
        /// The offending value.
        value: u64,
    },
    /// An enum/bool discriminant byte had an invalid value.
    InvalidDiscriminant {
        /// Type being decoded.
        type_name: &'static str,
        /// The offending discriminant.
        value: u64,
    },
    /// A claimed collection length exceeds the remaining input bytes.
    LengthOverrun {
        /// Length claimed by the (possibly adversarial) encoder.
        claimed: usize,
        /// Bytes remaining in the input.
        available: usize,
    },
    /// A claimed collection length exceeds the decoder's hard allocation
    /// ceiling ([`MAX_DECODE_CAPACITY`](crate::MAX_DECODE_CAPACITY)).
    CapacityExceeded {
        /// Length claimed by the (possibly adversarial) encoder.
        requested: usize,
        /// The decoder-side ceiling.
        limit: usize,
    },
    /// Decoded after the value finished, but bytes remain.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// String bytes were not valid UTF-8.
    InvalidUtf8,
    /// A domain-specific validity rule failed (e.g. a bitstring longer than
    /// its declared bound).
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, available } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {available} available"
                )
            }
            CodecError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            CodecError::NonCanonicalVarint => {
                write!(f, "varint is not minimally encoded")
            }
            CodecError::VarintRange { type_name, value } => {
                write!(f, "value {value} out of range for {type_name}")
            }
            CodecError::InvalidDiscriminant { type_name, value } => {
                write!(f, "invalid discriminant {value} for {type_name}")
            }
            CodecError::LengthOverrun { claimed, available } => {
                write!(
                    f,
                    "claimed length {claimed} exceeds {available} available bytes"
                )
            }
            CodecError::CapacityExceeded { requested, limit } => {
                write!(
                    f,
                    "claimed length {requested} exceeds decode capacity limit {limit}"
                )
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl Error for CodecError {}
