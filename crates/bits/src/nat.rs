//! Arbitrary-precision natural numbers.

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

use crate::BitString;

/// An arbitrary-precision natural number: the `VAL` of a bitstring (paper §2).
///
/// Internally a little-endian sequence of `u32` limbs with no trailing zero
/// limbs (so representations are canonical and `Eq` is structural).
///
/// The arithmetic surface is deliberately small — exactly what the protocols,
/// tests and examples need: comparison, addition/subtraction, small-factor
/// multiplication/division (for decimal I/O), and bit-level conversions to
/// and from [`BitString`].
///
/// # Examples
///
/// ```
/// use ca_bits::Nat;
///
/// let v: Nat = "340282366920938463463374607431768211456".parse().unwrap(); // 2^128
/// assert_eq!(v.bit_len(), 129);
/// assert_eq!(v.to_string(), "340282366920938463463374607431768211456");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Nat {
    /// Little-endian limbs; invariant: no trailing zeros.
    limbs: Vec<u32>,
}

/// Error returned when parsing a decimal [`Nat`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNatError {
    pub(crate) offending: char,
}

impl fmt::Display for ParseNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid digit {:?} in natural number", self.offending)
    }
}

impl Error for ParseNatError {}

impl Nat {
    /// Zero.
    pub fn zero() -> Self {
        Self::default()
    }

    /// One.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// From a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = Nat {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// From a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut n = Nat {
            limbs: (0..4).map(|i| (v >> (32 * i)) as u32).collect(),
        };
        n.normalize();
        n
    }

    /// `2^k − 1`: the all-ones value of `k` bits (`Π_ℕ` lines 3, 7, 10 clamp
    /// over-long inputs to this).
    pub fn all_ones(k: usize) -> Self {
        BitString::repeat(true, k).val()
    }

    /// `2^k`.
    pub fn pow2(k: usize) -> Self {
        let mut limbs = vec![0u32; k / 32 + 1];
        limbs[k / 32] = 1 << (k % 32);
        let mut n = Nat { limbs };
        n.normalize();
        n
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `|BITS(v)|` (paper §2): number of bits in the minimal representation;
    /// zero has length 0.
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 32 * (self.limbs.len() - 1) + (32 - top.leading_zeros() as usize),
        }
    }

    /// The `i`-th bit counted from the least-significant end.
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 32)
            .is_some_and(|&limb| limb & (1 << (i % 32)) != 0)
    }

    /// `VAL(bits)` (paper §2).
    pub fn from_bits(bits: &BitString) -> Self {
        let len = bits.len();
        let mut limbs = vec![0u32; len.div_ceil(32)];
        for j in 0..len {
            // Bit at MSB-index (len-1-j) has weight 2^j.
            if bits.get(len - 1 - j) {
                limbs[j / 32] |= 1 << (j % 32);
            }
        }
        let mut n = Nat { limbs };
        n.normalize();
        n
    }

    /// `BITSℓ(v)` (paper §2): the `ℓ`-bit representation, `None` if
    /// `v ≥ 2^ℓ`.
    pub fn to_bits_len(&self, ell: usize) -> Option<BitString> {
        if self.bit_len() > ell {
            return None;
        }
        let mut bytes = vec![0u8; ell.div_ceil(8)];
        for j in 0..self.bit_len() {
            if self.bit(j) {
                let msb_index = ell - 1 - j;
                bytes[msb_index / 8] |= 0x80 >> (msb_index % 8);
            }
        }
        Some(BitString::from_packed(&bytes, ell))
    }

    /// `BITS(v)` (paper §2): the minimal representation (no leading zeros);
    /// zero maps to the empty bitstring.
    pub fn to_bits_min(&self) -> BitString {
        self.to_bits_len(self.bit_len())
            .expect("bit_len-sized representation always exists")
    }

    /// Value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.bit_len() > 128 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &limb) in self.limbs.iter().enumerate() {
            v |= u128::from(limb) << (32 * i);
        }
        Some(v)
    }

    /// Value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        self.to_u128().and_then(|v| u64::try_from(v).ok())
    }

    /// `self + other`.
    pub fn add(&self, other: &Nat) -> Nat {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let sum = u64::from(limb) + u64::from(short.get(i).copied().unwrap_or(0)) + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        let mut n = Nat { limbs: out };
        n.normalize();
        n
    }

    /// `self − other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &Nat) -> Option<Nat> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let diff = i64::from(self.limbs[i])
                - i64::from(other.limbs.get(i).copied().unwrap_or(0))
                - borrow;
            if diff < 0 {
                out.push((diff + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(diff as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        let mut n = Nat { limbs: out };
        n.normalize();
        Some(n)
    }

    /// `self * m` for a small factor.
    pub fn mul_u32(&self, m: u32) -> Nat {
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &limb in &self.limbs {
            let prod = u64::from(limb) * u64::from(m) + carry;
            out.push(prod as u32);
            carry = prod >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        let mut n = Nat { limbs: out };
        n.normalize();
        n
    }

    /// `(self / d, self % d)` for a small divisor.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u32(&self, d: u32) -> (Nat, u32) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | u64::from(self.limbs[i]);
            out[i] = (cur / u64::from(d)) as u32;
            rem = cur % u64::from(d);
        }
        let mut q = Nat { limbs: out };
        q.normalize();
        (q, rem as u32)
    }

    /// Midpoint `⌊(self + other) / 2⌋` — handy for convex-validity checks.
    pub fn midpoint(&self, other: &Nat) -> Nat {
        self.add(other).div_rem_u32(2).0
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Self {
        Nat::from_u64(v)
    }
}

impl From<u128> for Nat {
    fn from(v: u128) -> Self {
        Nat::from_u128(v)
    }
}

impl FromStr for Nat {
    type Err = ParseNatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut acc = Nat::zero();
        let mut any = false;
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10).ok_or(ParseNatError { offending: c })?;
            acc = acc.mul_u32(10).add(&Nat::from_u64(u64::from(d)));
            any = true;
        }
        if !any {
            return Err(ParseNatError { offending: ' ' });
        }
        Ok(acc)
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel 9 decimal digits at a time.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u32(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.pop().map(|c| c.to_string()).unwrap_or_default();
        while let Some(c) = chunks.pop() {
            s.push_str(&format!("{c:09}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bit_len() <= 128 {
            write!(f, "Nat({self})")
        } else {
            write!(f, "Nat({} bits)", self.bit_len())
        }
    }
}

impl Encode for Nat {
    fn encode(&self, w: &mut Writer) {
        self.to_bits_min().encode(w);
    }

    fn encoded_len(&self) -> usize {
        self.to_bits_min().encoded_len()
    }
}

impl Decode for Nat {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bits = BitString::decode(r)?;
        if bits.leading_zeros() > 0 {
            return Err(CodecError::Invalid("non-minimal Nat encoding"));
        }
        Ok(bits.val())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bit_len_matches_paper_definition() {
        // BITS(v) = B1..Bk with 2^(k-1) <= v < 2^k.
        for v in 1u64..200 {
            let n = Nat::from_u64(v);
            let k = n.bit_len();
            assert!(1u64 << (k - 1) <= v && v < 1u64 << k, "v = {v}");
        }
        assert_eq!(Nat::zero().bit_len(), 0);
    }

    #[test]
    fn bits_round_trip_small() {
        for v in 0u64..300 {
            let n = Nat::from_u64(v);
            assert_eq!(n.to_bits_min().val(), n);
            assert_eq!(n.to_bits_len(16).unwrap().val(), n);
        }
    }

    #[test]
    fn to_bits_len_rejects_overflow() {
        assert!(Nat::from_u64(8).to_bits_len(3).is_none());
        assert!(Nat::from_u64(7).to_bits_len(3).is_some());
    }

    #[test]
    fn all_ones_and_pow2() {
        assert_eq!(Nat::all_ones(5), Nat::from_u64(31));
        assert_eq!(Nat::pow2(5), Nat::from_u64(32));
        assert_eq!(Nat::all_ones(0), Nat::zero());
        assert_eq!(Nat::pow2(0), Nat::one());
        assert_eq!(Nat::all_ones(40).add(&Nat::one()), Nat::pow2(40));
    }

    #[test]
    fn decimal_round_trip() {
        for text in [
            "0",
            "1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
        ] {
            let n: Nat = text.parse().unwrap();
            assert_eq!(n.to_string(), text);
        }
        assert!("12x".parse::<Nat>().is_err());
        assert!("".parse::<Nat>().is_err());
    }

    #[test]
    fn arithmetic_basics() {
        let a = Nat::from_u64(u64::MAX);
        let b = Nat::from_u64(1);
        assert_eq!(a.add(&b).to_u128(), Some(u128::from(u64::MAX) + 1));
        assert_eq!(a.add(&b).checked_sub(&b), Some(a.clone()));
        assert_eq!(b.checked_sub(&a), None);
        assert_eq!(a.mul_u32(0), Nat::zero());
        let (q, r) = Nat::from_u64(1000).div_rem_u32(7);
        assert_eq!((q.to_u64().unwrap(), r), (142, 6));
    }

    #[test]
    fn midpoint_is_within_range() {
        let a = Nat::from_u64(10);
        let b = Nat::from_u64(21);
        let m = a.midpoint(&b);
        assert_eq!(m, Nat::from_u64(15));
    }

    proptest! {
        #[test]
        fn prop_u128_round_trip(v in any::<u128>()) {
            prop_assert_eq!(Nat::from_u128(v).to_u128(), Some(v));
        }

        #[test]
        fn prop_cmp_matches_u128(a in any::<u128>(), b in any::<u128>()) {
            prop_assert_eq!(Nat::from_u128(a).cmp(&Nat::from_u128(b)), a.cmp(&b));
        }

        #[test]
        fn prop_add_sub_round_trip(a in 0..u128::MAX / 2, b in 0..u128::MAX / 2) {
            let (na, nb) = (Nat::from_u128(a), Nat::from_u128(b));
            prop_assert_eq!(na.add(&nb).checked_sub(&nb), Some(na));
            prop_assert_eq!(Nat::from_u128(a).add(&nb).to_u128(), Some(a + b));
        }

        #[test]
        fn prop_bits_round_trip(v in any::<u128>(), pad in 0usize..40) {
            let n = Nat::from_u128(v);
            let ell = n.bit_len() + pad;
            let bits = n.to_bits_len(ell).unwrap();
            prop_assert_eq!(bits.len(), ell);
            prop_assert_eq!(bits.val(), n);
        }

        #[test]
        fn prop_decimal_round_trip(v in any::<u128>()) {
            let n = Nat::from_u128(v);
            let text = n.to_string();
            prop_assert_eq!(text.clone(), v.to_string());
            prop_assert_eq!(text.parse::<Nat>().unwrap(), n);
        }

        #[test]
        fn prop_codec_round_trip(v in any::<u128>()) {
            let n = Nat::from_u128(v);
            let bytes = n.encode_to_vec();
            prop_assert_eq!(Nat::decode_from_slice(&bytes).unwrap(), n);
        }
    }
}
