//! Packed MSB-first bitstrings.

use std::cmp::Ordering;
use std::fmt;

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

use crate::Nat;

/// A packed, arbitrary-length bitstring, MSB-first.
///
/// Bit `0` is the *leftmost* (most significant) bit, matching the paper's
/// `B₁B₂…Bₖ` notation (the paper is 1-indexed; this API is 0-indexed).
///
/// # Ordering
///
/// `Ord` compares **numerically by `VAL`**, breaking ties (equal value,
/// different zero-padding) by length, so that the order is a total order
/// consistent with `Eq`. For the common protocol case of equal-length strings
/// this coincides with both lexicographic and numeric order. Use
/// [`BitString::cmp_val`] when only `VAL` should be compared.
///
/// # Invariant
///
/// The backing bytes are canonical: all bits beyond `len` in the final byte
/// are zero. Decoding enforces this, so equal bitstrings always have equal
/// encodings (required when hashing encodings).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitString {
    bytes: Vec<u8>,
    len: usize,
}

impl BitString {
    /// The empty bitstring.
    pub fn new() -> Self {
        Self::default()
    }

    /// The empty bitstring (alias matching the paper's "empty string").
    pub fn empty() -> Self {
        Self::default()
    }

    /// A bitstring of `len` copies of `bit`.
    pub fn repeat(bit: bool, len: usize) -> Self {
        let bytes = vec![if bit { 0xff } else { 0x00 }; len.div_ceil(8)];
        let mut s = Self { bytes, len };
        s.clear_tail();
        s
    }

    /// Builds a bitstring from explicit bits (MSB first).
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut s = Self::new();
        for b in bits {
            s.push(b);
        }
        s
    }

    /// Parses a string of `'0'`/`'1'` characters.
    ///
    /// # Errors
    ///
    /// Returns `None` if any character is not `'0'` or `'1'`.
    pub fn parse_binary(text: &str) -> Option<Self> {
        let mut s = Self::new();
        for c in text.chars() {
            match c {
                '0' => s.push(false),
                '1' => s.push(true),
                _ => return None,
            }
        }
        Some(s)
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitstring has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at position `i` (0-indexed from the most significant end).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.bytes[i / 8] & (0x80 >> (i % 8)) != 0
    }

    /// Sets the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let mask = 0x80 >> (i % 8);
        if bit {
            self.bytes[i / 8] |= mask;
        } else {
            self.bytes[i / 8] &= !mask;
        }
    }

    /// Appends one bit at the least-significant end.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        self.len += 1;
        if bit {
            self.set(self.len - 1, true);
        }
    }

    /// Appends all bits of `other` (the paper's `‖` concatenation).
    pub fn extend_from(&mut self, other: &BitString) {
        if self.len.is_multiple_of(8) {
            // Byte-aligned fast path.
            self.bytes.extend_from_slice(&other.bytes);
            self.len += other.len;
        } else {
            for i in 0..other.len {
                self.push(other.get(i));
            }
        }
    }

    /// Returns `self ‖ other`.
    pub fn concat(&self, other: &BitString) -> BitString {
        let mut out = self.clone();
        out.extend_from(other);
        out
    }

    /// The sub-bitstring of bit positions `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> BitString {
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of range (len {})",
            self.len
        );
        if start.is_multiple_of(8) {
            // Byte-aligned fast path.
            let nbits = end - start;
            let bytes = self.bytes[start / 8..(start / 8) + nbits.div_ceil(8)].to_vec();
            let mut out = BitString { bytes, len: nbits };
            out.clear_tail();
            return out;
        }
        let mut out = BitString::new();
        for i in start..end {
            out.push(self.get(i));
        }
        out
    }

    /// The first `n` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn prefix(&self, n: usize) -> BitString {
        self.slice(0, n)
    }

    /// Truncates to the first `n` bits in place.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn truncate(&mut self, n: usize) {
        assert!(
            n <= self.len,
            "truncate {n} out of range (len {})",
            self.len
        );
        self.len = n;
        self.bytes.truncate(n.div_ceil(8));
        self.clear_tail();
    }

    /// Whether `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &BitString) -> bool {
        if self.len > other.len {
            return false;
        }
        // Compare whole bytes, then the ragged tail.
        let full = self.len / 8;
        if self.bytes[..full] != other.bytes[..full] {
            return false;
        }
        let rem = self.len % 8;
        if rem == 0 {
            return true;
        }
        let mask = 0xffu8 << (8 - rem);
        (self.bytes[full] ^ other.bytes[full]) & mask == 0
    }

    /// Length of the longest common prefix of `self` and `other`.
    pub fn common_prefix_len(&self, other: &BitString) -> usize {
        let max = self.len.min(other.len);
        let full_bytes = max / 8;
        let mut i = 0;
        while i < full_bytes && self.bytes[i] == other.bytes[i] {
            i += 1;
        }
        let mut bit = i * 8;
        while bit < max && self.get(bit) == other.get(bit) {
            bit += 1;
        }
        bit
    }

    /// `MINℓ(self)` (paper §2): the lowest `ℓ`-bit string with prefix `self`,
    /// obtained by appending `ℓ − |self|` zeroes.
    ///
    /// # Panics
    ///
    /// Panics if `ell < self.len()`.
    pub fn min_extend(&self, ell: usize) -> BitString {
        assert!(
            ell >= self.len,
            "MIN_l with l = {ell} < |prefix| = {}",
            self.len
        );
        let mut out = self.clone();
        out.bytes.resize(ell.div_ceil(8), 0);
        out.len = ell;
        out
    }

    /// `MAXℓ(self)` (paper §2): the highest `ℓ`-bit string with prefix
    /// `self`, obtained by appending `ℓ − |self|` ones.
    ///
    /// # Panics
    ///
    /// Panics if `ell < self.len()`.
    pub fn max_extend(&self, ell: usize) -> BitString {
        assert!(
            ell >= self.len,
            "MAX_l with l = {ell} < |prefix| = {}",
            self.len
        );
        let mut out = self.clone();
        for _ in self.len..ell {
            out.push(true);
        }
        out
    }

    /// Number of leading zero bits.
    pub fn leading_zeros(&self) -> usize {
        for (byte_idx, &b) in self.bytes.iter().enumerate() {
            if b != 0 {
                return (byte_idx * 8 + b.leading_zeros() as usize).min(self.len);
            }
        }
        self.len
    }

    /// `|BITS(VAL(self))|`: the length after stripping leading zeros.
    ///
    /// The paper defines `BITS(0)` to be... well, `0 ≤ v < 2⁰` has no
    /// solution; we follow the usual convention that zero has effective
    /// length 0.
    pub fn effective_len(&self) -> usize {
        self.len - self.leading_zeros()
    }

    /// The minimal-form bitstring (leading zeros stripped).
    pub fn strip_leading_zeros(&self) -> BitString {
        self.slice(self.leading_zeros(), self.len)
    }

    /// Numeric comparison of `VAL(self)` vs `VAL(other)`, ignoring
    /// zero-padding. For equal-length strings this equals lexicographic
    /// comparison.
    pub fn cmp_val(&self, other: &BitString) -> Ordering {
        let a_eff = self.effective_len();
        let b_eff = other.effective_len();
        match a_eff.cmp(&b_eff) {
            Ordering::Equal => {
                let a0 = self.len - a_eff;
                let b0 = other.len - b_eff;
                for i in 0..a_eff {
                    match (self.get(a0 + i), other.get(b0 + i)) {
                        (false, true) => return Ordering::Less,
                        (true, false) => return Ordering::Greater,
                        _ => {}
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }

    /// Splits into exactly `num_blocks` blocks of equal length
    /// (paper §4, `BLOCKS(v)`).
    ///
    /// # Panics
    ///
    /// Panics if `self.len()` is not a multiple of `num_blocks`.
    pub fn split_blocks(&self, num_blocks: usize) -> Vec<BitString> {
        assert!(num_blocks > 0, "num_blocks must be positive");
        assert_eq!(
            self.len % num_blocks,
            0,
            "length {} not divisible into {num_blocks} blocks",
            self.len
        );
        let block_len = self.len / num_blocks;
        (0..num_blocks)
            .map(|i| self.slice(i * block_len, (i + 1) * block_len))
            .collect()
    }

    /// The `i`-th block (0-indexed) of width `block_len`
    /// (paper §4, `BLOCKᵢ(v)` is 1-indexed).
    ///
    /// # Panics
    ///
    /// Panics if the block lies outside the bitstring.
    pub fn block(&self, i: usize, block_len: usize) -> BitString {
        self.slice(i * block_len, (i + 1) * block_len)
    }

    /// Interprets the bitstring as a natural number (`VAL`, paper §2).
    pub fn val(&self) -> Nat {
        Nat::from_bits(self)
    }

    /// Iterates over the bits, MSB first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The packed backing bytes (final partial byte zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Builds from packed bytes, taking the first `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short for `len` bits.
    pub fn from_packed(bytes: &[u8], len: usize) -> Self {
        assert!(
            bytes.len() >= len.div_ceil(8),
            "not enough bytes for {len} bits"
        );
        let mut s = Self {
            bytes: bytes[..len.div_ceil(8)].to_vec(),
            len,
        };
        s.clear_tail();
        s
    }

    /// Zeroes the unused bits of the final byte (canonical form invariant).
    fn clear_tail(&mut self) {
        let rem = self.len % 8;
        if rem != 0 {
            if let Some(last) = self.bytes.last_mut() {
                *last &= 0xffu8 << (8 - rem);
            }
        }
    }
}

impl PartialOrd for BitString {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitString {
    /// Numeric (`VAL`) order with length tie-break; see the type docs.
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_val(other).then(self.len.cmp(&other.len))
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.iter() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len <= 64 {
            write!(f, "BitString(\"{self}\")")
        } else {
            write!(f, "BitString(len {}, \"{}…\")", self.len, self.prefix(64))
        }
    }
}

impl Encode for BitString {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len as u64);
        w.put_raw(&self.bytes);
    }

    fn encoded_len(&self) -> usize {
        Writer::varint_len(self.len as u64) + self.bytes.len()
    }
}

impl Decode for BitString {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len_bits = usize::decode(r)?;
        let nbytes = len_bits.div_ceil(8);
        if nbytes > r.remaining() {
            return Err(CodecError::LengthOverrun {
                claimed: nbytes,
                available: r.remaining(),
            });
        }
        let bytes = r.get_raw(nbytes)?.to_vec();
        let s = BitString {
            bytes,
            len: len_bits,
        };
        // Enforce canonical form: a byzantine encoder may not smuggle two
        // distinct encodings of the same bitstring.
        let mut canon = s.clone();
        canon.clear_tail();
        if canon.bytes != s.bytes {
            return Err(CodecError::Invalid("non-canonical bitstring padding"));
        }
        Ok(s)
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bs(s: &str) -> BitString {
        BitString::parse_binary(s).unwrap()
    }

    #[test]
    fn push_get_round_trip() {
        let s = bs("10110");
        assert_eq!(s.len(), 5);
        assert!(s.get(0));
        assert!(!s.get(1));
        assert!(s.get(2));
        assert!(s.get(3));
        assert!(!s.get(4));
    }

    #[test]
    fn display_round_trips() {
        for text in ["", "0", "1", "101100111000", "111111111"] {
            assert_eq!(bs(text).to_string(), text);
        }
    }

    #[test]
    fn repeat_builds_uniform_strings() {
        assert_eq!(BitString::repeat(true, 9).to_string(), "111111111");
        assert_eq!(BitString::repeat(false, 3).to_string(), "000");
        assert_eq!(BitString::repeat(true, 0).to_string(), "");
    }

    #[test]
    fn slice_and_concat_are_inverse() {
        let s = bs("110100101110001");
        let a = s.slice(0, 7);
        let b = s.slice(7, s.len());
        assert_eq!(a.concat(&b), s);
    }

    #[test]
    fn slice_unaligned() {
        let s = bs("1101001011");
        assert_eq!(s.slice(3, 9).to_string(), "100101");
    }

    #[test]
    fn prefix_checks() {
        let s = bs("110100");
        assert!(bs("110").is_prefix_of(&s));
        assert!(bs("").is_prefix_of(&s));
        assert!(s.is_prefix_of(&s));
        assert!(!bs("111").is_prefix_of(&s));
        assert!(!bs("1101001").is_prefix_of(&s));
        assert_eq!(s.common_prefix_len(&bs("110111")), 4);
        assert_eq!(s.common_prefix_len(&bs("0")), 0);
    }

    #[test]
    fn min_max_extend_match_paper() {
        let p = bs("101");
        assert_eq!(p.min_extend(6).to_string(), "101000");
        assert_eq!(p.max_extend(6).to_string(), "101111");
        assert_eq!(p.min_extend(3), p);
    }

    #[test]
    fn effective_len_and_leading_zeros() {
        assert_eq!(bs("000101").leading_zeros(), 3);
        assert_eq!(bs("000101").effective_len(), 3);
        assert_eq!(bs("0000").effective_len(), 0);
        assert_eq!(bs("").effective_len(), 0);
        assert_eq!(bs("1").leading_zeros(), 0);
        assert_eq!(bs("000000000001").leading_zeros(), 11);
    }

    #[test]
    fn cmp_val_ignores_padding() {
        assert_eq!(bs("0101").cmp_val(&bs("101")), Ordering::Equal);
        assert_eq!(bs("0101").cmp_val(&bs("110")), Ordering::Less);
        assert_eq!(bs("111").cmp_val(&bs("0110")), Ordering::Greater);
        assert_eq!(bs("").cmp_val(&bs("0000")), Ordering::Equal);
    }

    #[test]
    fn ord_is_total_and_consistent_with_eq() {
        let a = bs("0101");
        let b = bs("101");
        assert_ne!(a, b);
        assert_eq!(a.cmp(&b), Ordering::Greater); // equal VAL, longer wins
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn blocks_split_evenly() {
        let s = bs("110100101110");
        let blocks = s.split_blocks(4);
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].to_string(), "110");
        assert_eq!(blocks[3].to_string(), "110");
        assert_eq!(s.block(1, 3).to_string(), "100");
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn blocks_reject_uneven_split() {
        bs("11010").split_blocks(2);
    }

    #[test]
    fn truncate_clears_tail_bits() {
        let mut s = bs("11111111");
        s.truncate(3);
        assert_eq!(s.to_string(), "111");
        assert_eq!(s.as_bytes(), &[0b1110_0000]);
    }

    #[test]
    fn codec_rejects_dirty_padding() {
        // "1" encoded with a dirty low bit in the byte.
        let mut w = ca_codec::Writer::new();
        w.put_varint(1);
        w.put_raw(&[0b1000_0001]);
        assert!(BitString::decode_from_slice(&w.into_vec()).is_err());
    }

    proptest! {
        #[test]
        fn prop_codec_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
            let s = BitString::from_bits(bits);
            let bytes = s.encode_to_vec();
            prop_assert_eq!(bytes.len(), s.encoded_len());
            let back = BitString::decode_from_slice(&bytes).unwrap();
            prop_assert_eq!(back, s);
        }

        #[test]
        fn prop_slice_concat_identity(
            bits in proptest::collection::vec(any::<bool>(), 1..300),
            cut_frac in 0.0f64..1.0,
        ) {
            let s = BitString::from_bits(bits);
            let cut = ((s.len() as f64) * cut_frac) as usize;
            let a = s.slice(0, cut);
            let b = s.slice(cut, s.len());
            prop_assert_eq!(a.concat(&b), s);
        }

        #[test]
        fn prop_common_prefix_is_prefix(
            a in proptest::collection::vec(any::<bool>(), 0..200),
            b in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let a = BitString::from_bits(a);
            let b = BitString::from_bits(b);
            let k = a.common_prefix_len(&b);
            prop_assert!(a.prefix(k).is_prefix_of(&b));
            // Maximality: the next bit differs or one string ends.
            if k < a.len() && k < b.len() {
                prop_assert_ne!(a.get(k), b.get(k));
            }
        }

        #[test]
        fn prop_min_le_max_extend(
            bits in proptest::collection::vec(any::<bool>(), 0..100),
            extra in 0usize..50,
        ) {
            let p = BitString::from_bits(bits);
            let ell = p.len() + extra;
            let lo = p.min_extend(ell);
            let hi = p.max_extend(ell);
            prop_assert!(lo.cmp_val(&hi) != Ordering::Greater);
            prop_assert!(p.is_prefix_of(&lo));
            prop_assert!(p.is_prefix_of(&hi));
        }

        #[test]
        fn prop_val_cmp_matches_nat_cmp(
            a in proptest::collection::vec(any::<bool>(), 0..120),
            b in proptest::collection::vec(any::<bool>(), 0..120),
        ) {
            let a = BitString::from_bits(a);
            let b = BitString::from_bits(b);
            prop_assert_eq!(a.cmp_val(&b), a.val().cmp(&b.val()));
        }
    }
}
