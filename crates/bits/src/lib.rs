//! Value domain for the convex-agreement protocol suite.
//!
//! The paper (§2, "Binary representations") manipulates values `v ∈ ℕ`
//! through their bit representations: `BITSℓ(v)` (the `ℓ`-bit, MSB-first
//! representation), `VAL(bits)` (the inverse), `MINℓ`/`MAXℓ` (the
//! lowest/highest `ℓ`-bit value with a given prefix), and — in §4 — block
//! decompositions `BLOCKS(v)`.
//!
//! This crate provides those operations:
//!
//! * [`BitString`] — a packed, arbitrary-length, MSB-first bitstring. This is
//!   the type protocol messages actually carry; prefix logic, padding
//!   (`MINℓ`/`MAXℓ`), and block splitting live here.
//! * [`Nat`] — an arbitrary-precision natural number (`VAL` of a bitstring),
//!   with enough arithmetic for the protocols, the experiment harness, and
//!   human-readable decimal I/O in the examples.
//! * [`Int`] — a signed integer `(−1)^sign · nat`, the input/output domain of
//!   the final protocol `Π_ℤ` (§6).
//!
//! # Examples
//!
//! ```
//! use ca_bits::{BitString, Nat};
//!
//! let v = Nat::from_u64(5); // BITS(5) = 101
//! let bits = v.to_bits_len(8).unwrap(); // BITS₈(5) = 00000101
//! assert_eq!(bits.to_string(), "00000101");
//!
//! let prefix = bits.slice(0, 5); // 00000
//! assert_eq!(prefix.max_extend(8).val(), Nat::from_u64(7)); // MAX₈(00000) = 00000111
//! assert_eq!(prefix.min_extend(8).val(), Nat::from_u64(0)); // MIN₈(00000)
//! ```

mod bitstring;
mod fixed;
mod int;
mod nat;

pub use bitstring::BitString;
pub use fixed::{Fixed, ParseFixedError};
pub use int::{Int, ParseIntError, Sign};
pub use nat::{Nat, ParseNatError};
