//! Signed integers: the input/output domain of `Π_ℤ` (paper §6).

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

use ca_codec::{CodecError, Decode, Encode, Reader, Writer};

use crate::{Nat, ParseNatError};

/// Sign of an [`Int`], matching the paper's `SIGN ∈ {0, 1}` with
/// `v = (−1)^SIGN · v^ℕ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sign {
    /// `SIGN = 0`: non-negative.
    #[default]
    NonNeg,
    /// `SIGN = 1`: negative.
    Neg,
}

impl Sign {
    /// The paper's bit encoding of the sign.
    pub fn as_bit(self) -> bool {
        matches!(self, Sign::Neg)
    }

    /// From the paper's bit encoding.
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Sign::Neg
        } else {
            Sign::NonNeg
        }
    }
}

/// A signed arbitrary-precision integer `(−1)^sign · magnitude`.
///
/// Zero is canonically non-negative (`-0` normalizes to `0`), so `Eq` is
/// structural equality of values.
///
/// # Examples
///
/// ```
/// use ca_bits::Int;
///
/// let t: Int = "-1005".parse().unwrap(); // e.g. a temperature of −10.05°C in centi-degrees
/// assert!(t < Int::zero());
/// assert_eq!(t.to_string(), "-1005");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Int {
    sign: Sign,
    mag: Nat,
}

/// Error returned when parsing a decimal [`Int`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntError(ParseNatError);

impl fmt::Display for ParseIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer: {}", self.0)
    }
}

impl Error for ParseIntError {}

impl Int {
    /// Zero.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Builds from a sign and magnitude, normalizing `-0` to `0`.
    pub fn from_parts(sign: Sign, mag: Nat) -> Self {
        let sign = if mag.is_zero() { Sign::NonNeg } else { sign };
        Self { sign, mag }
    }

    /// From an `i64`.
    pub fn from_i64(v: i64) -> Self {
        Self::from_parts(
            if v < 0 { Sign::Neg } else { Sign::NonNeg },
            Nat::from_u128(v.unsigned_abs().into()),
        )
    }

    /// From an `i128`.
    pub fn from_i128(v: i128) -> Self {
        Self::from_parts(
            if v < 0 { Sign::Neg } else { Sign::NonNeg },
            Nat::from_u128(v.unsigned_abs()),
        )
    }

    /// The sign (`SIGN_IN` in the paper's `Π_ℤ`).
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude (`v^ℕ` in the paper's `Π_ℤ`).
    pub fn magnitude(&self) -> &Nat {
        &self.mag
    }

    /// Consumes `self`, returning `(sign, magnitude)`.
    pub fn into_parts(self) -> (Sign, Nat) {
        (self.sign, self.mag)
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Value as `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        let mag = self.mag.to_u128()?;
        match self.sign {
            Sign::NonNeg => i128::try_from(mag).ok(),
            Sign::Neg => {
                if mag <= (1u128 << 127) {
                    Some((mag as i128).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::NonNeg, Sign::Neg) => Ordering::Greater,
            (Sign::Neg, Sign::NonNeg) => Ordering::Less,
            (Sign::NonNeg, Sign::NonNeg) => self.mag.cmp(&other.mag),
            (Sign::Neg, Sign::Neg) => other.mag.cmp(&self.mag),
        }
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        Int::from_i64(v)
    }
}

impl FromStr for Int {
    type Err = ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Neg, rest),
            None => (Sign::NonNeg, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag: Nat = digits.parse().map_err(ParseIntError)?;
        Ok(Int::from_parts(sign, mag))
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Neg {
            f.write_str("-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

impl Encode for Int {
    fn encode(&self, w: &mut Writer) {
        self.sign.as_bit().encode(w);
        self.mag.encode(w);
    }

    fn encoded_len(&self) -> usize {
        1 + self.mag.encoded_len()
    }
}

impl Decode for Int {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let sign = Sign::from_bit(bool::decode(r)?);
        let mag = Nat::decode(r)?;
        if sign == Sign::Neg && mag.is_zero() {
            return Err(CodecError::Invalid("negative zero"));
        }
        Ok(Int::from_parts(sign, mag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn negative_zero_normalizes() {
        let z = Int::from_parts(Sign::Neg, Nat::zero());
        assert_eq!(z, Int::zero());
        assert_eq!(z.sign(), Sign::NonNeg);
    }

    #[test]
    fn parse_and_display() {
        for text in ["0", "-1", "42", "-123456789012345678901234567890"] {
            let v: Int = text.parse().unwrap();
            assert_eq!(v.to_string(), text);
        }
        assert_eq!("+7".parse::<Int>().unwrap(), Int::from_i64(7));
        assert_eq!("-0".parse::<Int>().unwrap(), Int::zero());
        assert!("--1".parse::<Int>().is_err());
    }

    #[test]
    fn codec_rejects_negative_zero() {
        let mut w = Writer::new();
        true.encode(&mut w);
        Nat::zero().encode(&mut w);
        assert!(Int::decode_from_slice(&w.into_vec()).is_err());
    }

    proptest! {
        #[test]
        fn prop_cmp_matches_i128(a in any::<i128>(), b in any::<i128>()) {
            prop_assert_eq!(Int::from_i128(a).cmp(&Int::from_i128(b)), a.cmp(&b));
        }

        #[test]
        fn prop_i128_round_trip(v in any::<i128>()) {
            prop_assert_eq!(Int::from_i128(v).to_i128(), Some(v));
        }

        #[test]
        fn prop_codec_round_trip(v in any::<i128>()) {
            let i = Int::from_i128(v);
            prop_assert_eq!(Int::decode_from_slice(&i.encode_to_vec()).unwrap(), i);
        }

        #[test]
        fn prop_display_matches_i128(v in any::<i128>()) {
            prop_assert_eq!(Int::from_i128(v).to_string(), v.to_string());
        }
    }
}
