//! Fixed-point decimals: the paper's remark that integer inputs are
//! "without loss of generality … one could alternatively interpret the
//! inputs being rational numbers with some arbitrary pre-defined
//! precision" (§1), made concrete.
//!
//! A [`Fixed`] is an [`Int`] scaled by `10^scale`; the protocols run on the
//! underlying integer, and ordering (hence convex validity) is preserved
//! because scaling by a positive constant is monotone.

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;

use crate::{Int, Nat, Sign};

/// A decimal fixed-point number `mantissa · 10^(−scale)`.
///
/// # Examples
///
/// ```
/// use ca_bits::Fixed;
///
/// let t = Fixed::parse("-10.05", 2).unwrap(); // centi-degree precision
/// assert_eq!(t.to_string(), "-10.05");
/// assert_eq!(t.mantissa().to_i128(), Some(-1005));
/// let u = Fixed::parse("-10.3", 2).unwrap();
/// assert!(u < t);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fixed {
    mantissa: Int,
    scale: u32,
}

/// Error from parsing a [`Fixed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseFixedError {
    /// Not a decimal number.
    Malformed,
    /// More fractional digits than the configured scale.
    TooPrecise {
        /// Digits provided.
        digits: usize,
        /// Maximum allowed.
        scale: u32,
    },
}

impl fmt::Display for ParseFixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseFixedError::Malformed => write!(f, "malformed fixed-point number"),
            ParseFixedError::TooPrecise { digits, scale } => {
                write!(f, "{digits} fractional digits exceed scale {scale}")
            }
        }
    }
}

impl Error for ParseFixedError {}

impl Fixed {
    /// Builds from an already-scaled integer mantissa.
    pub fn from_mantissa(mantissa: Int, scale: u32) -> Self {
        Self { mantissa, scale }
    }

    /// Parses a decimal string (e.g. `"-10.05"`) at the given scale.
    ///
    /// # Errors
    ///
    /// [`ParseFixedError`] if the string is not a decimal number or carries
    /// more fractional digits than `scale`.
    pub fn parse(text: &str, scale: u32) -> Result<Self, ParseFixedError> {
        let (sign, rest) = match text.strip_prefix('-') {
            Some(r) => (Sign::Neg, r),
            None => (Sign::NonNeg, text.strip_prefix('+').unwrap_or(text)),
        };
        let (int_part, frac_part) = match rest.split_once('.') {
            Some((i, f)) => (i, f),
            None => (rest, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(ParseFixedError::Malformed);
        }
        if frac_part.len() > scale as usize {
            return Err(ParseFixedError::TooPrecise {
                digits: frac_part.len(),
                scale,
            });
        }
        let mut digits = String::new();
        digits.push_str(if int_part.is_empty() { "0" } else { int_part });
        digits.push_str(frac_part);
        for _ in frac_part.len()..scale as usize {
            digits.push('0');
        }
        let mag: Nat = digits.parse().map_err(|_| ParseFixedError::Malformed)?;
        Ok(Self {
            mantissa: Int::from_parts(sign, mag),
            scale,
        })
    }

    /// The scaled integer the protocols actually agree on.
    pub fn mantissa(&self) -> &Int {
        &self.mantissa
    }

    /// Number of decimal fraction digits.
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// Rewraps a protocol output (an [`Int`] mantissa) at this value's scale.
    pub fn with_mantissa(&self, mantissa: Int) -> Fixed {
        Fixed {
            mantissa,
            scale: self.scale,
        }
    }
}

impl PartialOrd for Fixed {
    /// Comparable only at equal scales (protocol runs fix one public scale);
    /// returns `None` across scales.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        (self.scale == other.scale).then(|| self.mantissa.cmp(&other.mantissa))
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = self.mantissa.magnitude().to_string();
        let scale = self.scale as usize;
        let (int_part, frac_part) = if digits.len() > scale {
            let (i, fr) = digits.split_at(digits.len() - scale);
            (i.to_owned(), fr.to_owned())
        } else {
            ("0".to_owned(), format!("{digits:0>scale$}"))
        };
        if self.mantissa.sign() == Sign::Neg {
            f.write_str("-")?;
        }
        if scale == 0 {
            write!(f, "{int_part}")
        } else {
            write!(f, "{int_part}.{frac_part}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        for (text, scale) in [
            ("-10.05", 2u32),
            ("0.00", 2),
            ("3.14", 2),
            ("42", 0),
            ("-0.001", 3),
            ("12345.678", 3),
        ] {
            let v = Fixed::parse(text, scale).unwrap();
            let canonical = text.to_owned();
            // Display always shows exactly `scale` fraction digits.
            if scale > 0 && !text.contains('.') {
                assert_eq!(
                    v.to_string(),
                    format!("{text}.{}", "0".repeat(scale as usize))
                );
            } else {
                assert_eq!(v.to_string(), canonical);
            }
        }
    }

    #[test]
    fn short_fractions_padded() {
        let v = Fixed::parse("-10.3", 2).unwrap();
        assert_eq!(v.mantissa().to_i128(), Some(-1030));
        assert_eq!(v.to_string(), "-10.30");
    }

    #[test]
    fn precision_enforced() {
        assert!(matches!(
            Fixed::parse("1.234", 2),
            Err(ParseFixedError::TooPrecise {
                digits: 3,
                scale: 2
            })
        ));
        assert!(Fixed::parse("", 2).is_err());
        assert!(Fixed::parse(".", 2).is_err());
        assert!(Fixed::parse("1.2.3", 2).is_err());
    }

    #[test]
    fn ordering_matches_real_value() {
        let a = Fixed::parse("-10.05", 2).unwrap();
        let b = Fixed::parse("-10.03", 2).unwrap();
        let c = Fixed::parse("100.00", 2).unwrap();
        assert!(a < b && b < c);
        // Cross-scale comparison is refused, not wrong.
        let d = Fixed::parse("1.5", 1).unwrap();
        assert_eq!(a.partial_cmp(&d), None);
    }

    #[test]
    fn negative_zero_normalizes_via_int() {
        let z = Fixed::parse("-0.00", 2).unwrap();
        assert_eq!(z.mantissa(), &Int::zero());
        assert_eq!(z.to_string(), "0.00");
    }
}
