//! End-to-end contracts of the tracing subsystem: every fault-free run
//! produces a trace that satisfies the `ca-trace check` invariants, traces
//! are deterministic (so `ca-trace diff` is meaningful), diffs pinpoint an
//! injected adversary, and tracing never perturbs the measured metrics.

use std::sync::Arc;

use convex_agreement::adversary::{Attack, AttackKind};
use convex_agreement::ba::BaKind;
use convex_agreement::bits::Int;
use convex_agreement::core::pi_z;
use convex_agreement::net::Sim;
use convex_agreement::trace::{
    check, first_divergence, read_jsonl, Record, RingBufferSink, TraceSink,
};
use proptest::prelude::*;

/// Runs `Π_ℤ` on `inputs` under `attack` with tracing and returns the
/// trace (executor-flushed, canonical order).
fn traced_run(inputs: &[Int], attack: Attack) -> Vec<Record> {
    let n = inputs.len();
    let t = convex_agreement::net::max_faults(n);
    let sink = Arc::new(RingBufferSink::new(4_000_000));
    let sim = attack
        .install(Sim::new(n), n, t)
        .with_trace(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let inputs = inputs.to_vec();
    sim.run(move |ctx, id| pi_z(ctx, &inputs[id.index()], BaKind::TurpinCoan));
    let records = sink.records();
    assert_eq!(
        sink.total_seen() as usize,
        records.len(),
        "ring wrapped; grow the capacity"
    );
    records
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Any fault-free run's trace satisfies every `ca-trace check`
    /// invariant: monotone rounds, balanced scopes, sends inside scopes,
    /// and decisions inside the honest input hull.
    #[test]
    fn prop_fault_free_traces_check_clean(
        n in 4usize..8,
        raw in proptest::collection::vec(any::<i64>(), 8),
    ) {
        let inputs: Vec<Int> = raw[..n].iter().map(|&v| Int::from_i64(v)).collect();
        let records = traced_run(&inputs, Attack::none());
        prop_assert!(!records.is_empty());
        let violations = check(&records);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    /// The same configuration always produces the byte-identical trace —
    /// the property that makes `ca-trace diff` meaningful at all.
    #[test]
    fn prop_traces_are_deterministic(
        n in 4usize..8,
        raw in proptest::collection::vec(any::<i64>(), 8),
        attack_idx in 0usize..11,
    ) {
        let inputs: Vec<Int> = raw[..n].iter().map(|&v| Int::from_i64(v)).collect();
        let attack = Attack::standard_suite(3)[attack_idx];
        let a = traced_run(&inputs, attack);
        let b = traced_run(&inputs, attack);
        prop_assert!(first_divergence(&a, &b).is_none(), "nondeterministic trace");
    }
}

/// Two runs that differ *only* by the injected adversary strategy diverge,
/// and the divergence carries enough context (party, round, scope) to
/// localize the injection.
#[test]
fn diff_pinpoints_injected_adversary() {
    let inputs: Vec<Int> = [40i64, 41, 42, 43, 44, 45, 46]
        .iter()
        .map(|&v| Int::from_i64(v))
        .collect();
    let clean = traced_run(&inputs, Attack::none());
    let attacked = traced_run(&inputs, Attack::new(AttackKind::Garbage).with_seed(11));

    let div = first_divergence(&clean, &attacked).expect("an injected adversary must show up");
    // The prefix before the divergence is genuinely shared.
    assert_eq!(clean[..div.index], attacked[..div.index]);
    let record = div
        .right
        .as_ref()
        .expect("the attacked side has the extra record");
    // The first divergent record is adversary activity, attributed to a
    // corrupted party with its round and scope.
    assert!(
        matches!(
            record.event,
            convex_agreement::trace::Event::FaultInjected { .. }
        ),
        "expected the fault injection itself to be the first divergence, got {record:?}"
    );
    assert!(record.party.is_some(), "divergence must name the party");
    let rendered = div.to_string();
    assert!(
        rendered.contains("diverge"),
        "Display names the divergence: {rendered}"
    );
    assert!(
        rendered.contains("fault"),
        "Display shows the divergent event: {rendered}"
    );
}

/// Two *different* adversary strategies with the same corruption budget
/// also diverge from each other — not just from the clean run — once the
/// scripted behavior differs (crash = silence, garbage = spray).
#[test]
fn diff_separates_adversary_strategies() {
    let inputs: Vec<Int> = (0..7).map(|i| Int::from_i64(1000 + i)).collect();
    let crash = traced_run(&inputs, Attack::new(AttackKind::Crash));
    let garbage = traced_run(&inputs, Attack::new(AttackKind::Garbage));
    let div = first_divergence(&crash, &garbage).expect("crash and garbage traces differ");
    // Both runs fault the same scripted parties, so the FaultInjected
    // prefix is shared and the divergence is actual adversary traffic.
    assert!(div.index > 0, "the fault-injection prefix must be shared");
}

/// A hand-crafted timeline in which every party certifies a fast-path
/// value *outside* the honest-input hull (inputs 3..7, certified value 9):
/// `ca-trace check` must reject it via the `fast-path-in-hull` rule, and
/// the matching `Decide` records independently trip the ordinary
/// `decide-in-hull` rule. No well-formedness rule may fire — the fixture
/// is a structurally valid trace whose *protocol claim* is wrong.
#[test]
fn fixture_fast_path_escape_is_rejected() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/fast_path_escape.jsonl");
    let records = read_jsonl(&path).expect("fixture parses as JSONL trace records");
    assert!(!records.is_empty());
    let violations = check(&records);
    assert!(
        violations.iter().any(|v| v.rule == "fast-path-in-hull"),
        "fast-path escape must be caught: {violations:?}"
    );
    assert!(
        violations.iter().any(|v| v.rule == "decide-in-hull"),
        "the matching decides sit outside the hull too: {violations:?}"
    );
    for v in &violations {
        assert!(
            matches!(v.rule, "fast-path-in-hull" | "decide-in-hull"),
            "fixture must be well-formed apart from the hull escape: {v}"
        );
    }
}

/// Tracing is observation-only: a run with a sink attached reports
/// bit-identical `Metrics` to the same run without one.
#[test]
fn tracing_does_not_perturb_metrics() {
    let inputs: Vec<Int> = (0..7).map(|i| Int::from_i64(-3 * i)).collect();
    for attack in [Attack::none(), Attack::new(AttackKind::Garbage)] {
        let n = inputs.len();
        let t = convex_agreement::net::max_faults(n);
        let run = |traced: bool| {
            let mut sim = attack.install(Sim::new(n), n, t);
            if traced {
                sim = sim.with_trace(Arc::new(RingBufferSink::new(4_000_000)));
            }
            let inputs = inputs.clone();
            sim.run(move |ctx, id| pi_z(ctx, &inputs[id.index()], BaKind::TurpinCoan))
                .metrics
        };
        let base = run(false);
        let traced = run(true);
        assert_eq!(
            base,
            traced,
            "metrics drifted under tracing [{}]",
            attack.name()
        );
        assert!(base.honest_bits > 0);
    }
}
