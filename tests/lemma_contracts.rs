//! Executable lemma contracts: each lemma of the paper, checked as a
//! runtime property across honest parties' outputs (cross-crate, i.e. the
//! lemmas as *observed* through the public API).

use convex_agreement::adversary::{Attack, AttackKind, LieKind};
use convex_agreement::ba::{ba_plus, lba_plus, BaKind};
use convex_agreement::bits::{BitString, Nat};
use convex_agreement::core::{find_prefix, PrefixSearch};
use convex_agreement::crypto::sha256;
use convex_agreement::net::{max_faults, Sim};

fn to_bits(vals: &[u64], ell: usize) -> Vec<BitString> {
    vals.iter()
        .map(|&v| Nat::from_u64(v).to_bits_len(ell).unwrap())
        .collect()
}

/// Lemma 1 (i)+(ii): prefix agreement, validity of v/v⊥, and the t+1
/// dissent guarantee for every one-bit extension of PREFIX*.
#[test]
fn lemma1_full_contract() {
    let ell = 10;
    let n = 7;
    let t = max_faults(n);
    let vals = [512u64, 520, 530, 700, 701, 702, 800];
    let bits = to_bits(&vals, ell);
    let report = Sim::new(n).run({
        let bits = bits.clone();
        move |ctx, id| find_prefix(ctx, ell, &bits[id.index()], BaKind::TurpinCoan)
    });
    let outs: Vec<&PrefixSearch> = report.honest_outputs();

    // Same PREFIX* everywhere.
    assert!(outs.windows(2).all(|w| w[0].prefix == w[1].prefix));
    let prefix = &outs[0].prefix;

    let lo = Nat::from_u64(*vals.iter().min().unwrap());
    let hi = Nat::from_u64(*vals.iter().max().unwrap());
    for out in &outs {
        // (i) PREFIX* prefixes v; v and v⊥ valid.
        assert!(prefix.is_prefix_of(&out.v));
        for w in [&out.v, &out.v_bot] {
            let v = w.val();
            assert!(v >= lo && v <= hi, "value {v:?} outside honest range");
        }
    }

    // (ii) for ANY (|PREFIX*|+1)-bit extension, ≥ t+1 honest v⊥ disagree.
    if prefix.len() < ell {
        for next in [false, true] {
            let mut ext = prefix.clone();
            ext.push(next);
            let dissenters = outs.iter().filter(|o| !ext.is_prefix_of(&o.v_bot)).count();
            assert!(
                dissenters > t,
                "extension {ext}: only {dissenters} dissenting v⊥ (need {})",
                t + 1
            );
        }
    }
}

/// Lemma 1 under a splitting input attack: the liars cannot break the
/// contract (they can only influence *which* valid prefix emerges).
#[test]
fn lemma1_under_split_liars() {
    let ell = 12;
    let n = 7;
    let t = 2;
    let attack = Attack::new(AttackKind::Lying(LieKind::Split));
    let mut vals = vec![2048u64, 2050, 2052, 2049, 2051, 0, 0];
    for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
        vals[p.index()] = match attack.lie_for(idx).unwrap() {
            LieKind::ExtremeHigh => (1 << ell) - 1,
            LieKind::ExtremeLow => 0,
            LieKind::Split => unreachable!(),
        };
    }
    let bits = to_bits(&vals, ell);
    let sim = attack.install(Sim::new(n), n, t);
    let report = sim.run({
        let bits = bits.clone();
        move |ctx, id| find_prefix(ctx, ell, &bits[id.index()], BaKind::TurpinCoan)
    });
    let outs: Vec<&PrefixSearch> = report.honest_outputs();
    assert!(outs.windows(2).all(|w| w[0].prefix == w[1].prefix));
    let lo = Nat::from_u64(2048);
    let hi = Nat::from_u64(2052);
    for out in outs {
        let v = out.v.val();
        assert!(v >= lo && v <= hi, "liars dragged v to {v:?}");
    }
}

/// Theorem 6's extra properties for Π_BA+ across seeds and splits.
#[test]
fn theorem6_properties_sweep() {
    let n = 7;
    for split in 0..=n {
        // `split` parties share value A, the rest hold distinct values.
        let a = sha256(b"A");
        let inputs: Vec<_> = (0..n)
            .map(|i| {
                if i < split {
                    a
                } else {
                    sha256(&[i as u8, 0xEE])
                }
            })
            .collect();
        let report = Sim::new(n).run({
            let inputs = inputs.clone();
            move |ctx, id| ba_plus(ctx, inputs[id.index()], BaKind::TurpinCoan)
        });
        let outs = report.honest_outputs();
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "agreement (split {split})"
        );
        match outs[0] {
            Some(v) => assert!(inputs.contains(v), "intrusion tolerance (split {split})"),
            None => {
                // Bounded pre-agreement: ⊥ only if < n − 2t share a value.
                let t = max_faults(n);
                assert!(split < n - 2 * t, "bounded pre-agreement (split {split})");
            }
        }
    }
}

/// Theorem 1's properties for Π_ℓBA+ mirror Theorem 6 on long values.
#[test]
fn theorem1_properties_sweep() {
    let n = 4;
    let t = max_faults(n);
    let long = |tag: u8| {
        BitString::from_bits((0..3000).map(move |i| (i as u8).wrapping_add(tag).is_multiple_of(5)))
    };
    for split in 0..=n {
        let inputs: Vec<_> = (0..n)
            .map(|i| {
                if i < split {
                    long(0)
                } else {
                    long(i as u8 + 1)
                }
            })
            .collect();
        let report = Sim::new(n).run({
            let inputs = inputs.clone();
            move |ctx, id| lba_plus(ctx, &inputs[id.index()], BaKind::TurpinCoan)
        });
        let outs = report.honest_outputs();
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
        match outs[0] {
            Some(v) => assert!(inputs.contains(v)),
            None => assert!(split < n - 2 * t),
        }
    }
}
