//! End-to-end integration tests: the full `Π_ℤ` stack across every crate,
//! checked against Definition 1 (Termination, Agreement, Convex Validity)
//! over a matrix of sizes, input shapes, and adversaries.

use convex_agreement::adversary::{Attack, AttackKind, LieKind};
use convex_agreement::ba::BaKind;
use convex_agreement::bits::{Int, Nat, Sign};
use convex_agreement::core::{check_agreement, check_convex_validity, pi_z, CaProtocol};
use convex_agreement::net::Sim;

/// Runs Π_ℤ under the given attack and asserts Definition 1.
fn assert_ca_int(n: usize, inputs: Vec<Int>, attack: Attack) -> Int {
    let t = convex_agreement::net::max_faults(n);
    let sim = attack.install(Sim::new(n), n, t);
    let inputs_run = inputs.clone();
    let report = sim.run(move |ctx, id| pi_z(ctx, &inputs_run[id.index()], BaKind::TurpinCoan));
    // Termination is implied by the run completing; now the other two.
    let honest_inputs: Vec<Int> = report
        .honest_parties()
        .iter()
        .map(|p| inputs[p.index()].clone())
        .collect();
    let outputs: Vec<Int> = report.honest_outputs().into_iter().cloned().collect();
    assert_eq!(
        outputs.len(),
        n - report.corrupted.len(),
        "all honest parties must produce outputs (termination)"
    );
    assert!(check_agreement(&outputs), "[{}] agreement", attack.name());
    assert!(
        check_convex_validity(&outputs, &honest_inputs),
        "[{}] convex validity: {:?} vs {:?}",
        attack.name(),
        outputs[0],
        honest_inputs
    );
    outputs[0].clone()
}

#[test]
fn minimal_sizes() {
    // n = 1 and n = 2 (t = 0): trivial but must work.
    assert_eq!(
        assert_ca_int(1, vec![Int::from_i64(-3)], Attack::none()),
        Int::from_i64(-3)
    );
    assert_ca_int(2, vec![Int::from_i64(5), Int::from_i64(9)], Attack::none());
    assert_ca_int(
        3,
        vec![Int::from_i64(-5), Int::from_i64(0), Int::from_i64(5)],
        Attack::none(),
    );
}

#[test]
fn first_nontrivial_resilience() {
    // n = 4, t = 1: the smallest setting with an actual corruption.
    for attack in Attack::standard_suite(7) {
        let mut inputs: Vec<Int> = vec![-10, -12, -11, -10]
            .into_iter()
            .map(Int::from_i64)
            .collect();
        if attack.is_lying() {
            inputs[3] = Int::from_i64(1 << 40);
        }
        assert_ca_int(4, inputs, attack);
    }
}

#[test]
fn zero_crossing_inputs() {
    // Sign disagreement among honest parties exercises the Π_ℤ sign logic.
    let inputs: Vec<Int> = vec![-2, -1, 0, 1, 2, 1, -1]
        .into_iter()
        .map(Int::from_i64)
        .collect();
    let out = assert_ca_int(7, inputs, Attack::none());
    assert!(out >= Int::from_i64(-2) && out <= Int::from_i64(2));
}

#[test]
fn huge_magnitudes_long_path() {
    // Magnitudes of ~2000 bits at n = 4 (n² = 16) force the block path.
    let n = 4;
    let inputs: Vec<Int> = (0..n as u64)
        .map(|i| {
            Int::from_parts(
                Sign::Neg,
                Nat::pow2(2000).add(&Nat::from_u64(i * 999_999_937)),
            )
        })
        .collect();
    assert_ca_int(n, inputs, Attack::none());
}

#[test]
fn long_path_with_lying_split() {
    let n = 7;
    let t = 2;
    let attack = Attack::new(AttackKind::Lying(LieKind::Split));
    let mut inputs: Vec<Int> = (0..n as u64)
        .map(|i| Int::from_parts(Sign::NonNeg, Nat::pow2(300).add(&Nat::from_u64(i))))
        .collect();
    for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
        inputs[p.index()] = match attack.lie_for(idx).unwrap() {
            LieKind::ExtremeHigh => Int::from_parts(Sign::NonNeg, Nat::all_ones(4000)),
            LieKind::ExtremeLow => Int::from_parts(Sign::Neg, Nat::all_ones(4000)),
            LieKind::Split => unreachable!(),
        };
    }
    assert_ca_int(n, inputs, attack);
}

#[test]
fn facade_matches_free_function() {
    let inputs: Vec<Int> = vec![4, 5, 6, 7].into_iter().map(Int::from_i64).collect();
    let proto = CaProtocol::new();
    let a = {
        let inputs = inputs.clone();
        Sim::new(4).run(move |ctx, id| proto.run_int(ctx, &inputs[id.index()]))
    };
    let b = {
        let inputs = inputs.clone();
        Sim::new(4).run(move |ctx, id| pi_z(ctx, &inputs[id.index()], BaKind::TurpinCoan))
    };
    assert_eq!(a.honest_outputs(), b.honest_outputs());
    assert_eq!(a.metrics.honest_bits, b.metrics.honest_bits);
}

#[test]
fn determinism_of_full_stack() {
    let inputs: Vec<Int> = vec![-100, 50, -25, 13, 99, -7, 42]
        .into_iter()
        .map(Int::from_i64)
        .collect();
    let run = || {
        let inputs = inputs.clone();
        let attack = Attack::new(AttackKind::Garbage).with_seed(11);
        attack
            .install(Sim::new(7), 7, 2)
            .run(move |ctx, id| pi_z(ctx, &inputs[id.index()], BaKind::TurpinCoan))
    };
    let (a, b) = (run(), run());
    assert_eq!(a.honest_outputs(), b.honest_outputs());
    assert_eq!(a.metrics.honest_bits, b.metrics.honest_bits);
    assert_eq!(a.metrics.rounds, b.metrics.rounds);
}

#[test]
fn both_ba_instantiations_full_stack() {
    let inputs: Vec<Int> = vec![-3, 1, 4, -1, 5, 9, -2]
        .into_iter()
        .map(Int::from_i64)
        .collect();
    for ba in [BaKind::TurpinCoan, BaKind::PhaseKing] {
        let inputs = inputs.clone();
        let report = Sim::new(7).run(move |ctx, id| pi_z(ctx, &inputs[id.index()], ba));
        let outs: Vec<Int> = report.honest_outputs().into_iter().cloned().collect();
        assert!(check_agreement(&outs));
    }
}

#[test]
fn many_seeds_adversarial_sweep() {
    // A small randomized sweep: seeds × attacks at n = 7 with jittered
    // inputs around a negative center.
    for seed in 0..3u64 {
        for attack in Attack::standard_suite(seed) {
            let n = 7;
            let t = 2;
            let mut inputs: Vec<Int> = (0..n as i64)
                .map(|i| Int::from_i64(-50_000 + (i * 7919 + seed as i64 * 104729) % 100))
                .collect();
            if attack.is_lying() {
                for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
                    inputs[p.index()] = match attack.lie_for(idx).unwrap() {
                        LieKind::ExtremeHigh => Int::from_i64(i64::MAX),
                        LieKind::ExtremeLow => Int::from_i64(i64::MIN),
                        LieKind::Split => unreachable!(),
                    };
                }
            }
            assert_ca_int(n, inputs, attack);
        }
    }
}

#[test]
#[ignore = "large-scale soak test (~minutes); run with `cargo test -- --ignored`"]
fn large_scale_soak_n25() {
    // n = 25, t = 8: the largest configuration in the repo's test suite.
    let n = 25;
    let t = 8;
    let attack = Attack::new(AttackKind::Lying(LieKind::Split));
    let mut inputs: Vec<Int> = (0..n as i64)
        .map(|i| Int::from_i64(7_000_000 + i * 13))
        .collect();
    for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
        inputs[p.index()] = match attack.lie_for(idx).unwrap() {
            LieKind::ExtremeHigh => Int::from_i64(i64::MAX),
            LieKind::ExtremeLow => Int::from_i64(i64::MIN),
            LieKind::Split => unreachable!(),
        };
    }
    let sim = attack.install(Sim::new(n).with_t(t), n, t);
    let inputs_run = inputs.clone();
    let report = sim.run(move |ctx, id| pi_z(ctx, &inputs_run[id.index()], BaKind::TurpinCoan));
    let honest_inputs: Vec<Int> = report
        .honest_parties()
        .iter()
        .map(|p| inputs[p.index()].clone())
        .collect();
    let outputs: Vec<Int> = report.honest_outputs().into_iter().cloned().collect();
    assert!(check_agreement(&outputs));
    assert!(check_convex_validity(&outputs, &honest_inputs));
}
