//! Multiplexing transparency: K sessions running inside one `ca-engine`
//! deployment must be indistinguishable — decisions and per-session
//! traces — from K isolated `pi_n` runs, under every adversary plan in
//! the standard suite. Message-level strategies attack the multiplexed
//! run through [`EnvelopeAdversary`], which presents each session with
//! exactly its isolated rushing view.
//!
//! Also covers the service-layer failure modes that have no isolated
//! counterpart: admission control past capacity and a flooding adversary
//! exercising the per-sender inbox cap, stray-session routing, and
//! malformed-envelope handling.

use std::sync::Arc;

use bytes::Bytes;
use convex_agreement::adversary::Attack;
use convex_agreement::ba::BaKind;
use convex_agreement::bits::Nat;
use convex_agreement::codec::Encode as _;
use convex_agreement::core::pi_n;
use convex_agreement::engine::loadgen::{derive_seed, session_inputs};
use convex_agreement::engine::{
    run_engine_party, EngineConfig, EngineOutput, Envelope, EnvelopeAdversary, SessionFrame,
    SessionId, SessionPlan,
};
use convex_agreement::net::{
    max_faults, Adversary, Corruption, PartyId, RoundActions, RoundView, SendSpec, Sim,
};
use convex_agreement::trace::{Event, RingBufferSink, TraceSink, ROOT_SCOPE};
use proptest::prelude::*;

/// The per-party trace signature we compare: `(round, scope, event)` for
/// the protocol-meaningful events. Scopes are relative to the session
/// root, so isolated and multiplexed runs are directly comparable.
type Sig = (u64, String, Event);

fn keep(event: &Event) -> bool {
    matches!(
        event,
        Event::Input { .. } | Event::Decide { .. } | Event::Note { .. }
    )
}

/// Rebases a multiplexed scope onto session `sid`'s root: `engine/s3` →
/// `_root`, `engine/s3/pi_n/…` → `pi_n/…`, anything else → `None`.
fn rebase(scope: &str, sid: u64) -> Option<String> {
    let rest = scope.strip_prefix(&format!("engine/s{sid}"))?;
    if rest.is_empty() {
        Some(ROOT_SCOPE.to_string())
    } else {
        rest.strip_prefix('/').map(str::to_string)
    }
}

struct IsolatedRun {
    outputs: Vec<Option<Nat>>,
    corrupted: Vec<PartyId>,
    sigs: Vec<Vec<Sig>>,
}

fn isolated_run(n: usize, t: usize, attack: Attack, inputs: Vec<Nat>) -> IsolatedRun {
    let sink = Arc::new(RingBufferSink::new(4_000_000));
    let report = attack
        .install(Sim::new(n), n, t)
        .with_trace(Arc::clone(&sink) as Arc<dyn TraceSink>)
        .run(move |ctx, id| pi_n(ctx, &inputs[id.index()], BaKind::TurpinCoan));
    let records = sink.records();
    assert_eq!(sink.total_seen() as usize, records.len(), "ring wrapped");
    let sigs = (0..n)
        .map(|p| {
            records
                .iter()
                .filter(|r| r.party == Some(p as u64) && keep(&r.event))
                .map(|r| (r.round, r.scope.clone(), r.event.clone()))
                .collect()
        })
        .collect();
    IsolatedRun {
        outputs: report.outputs,
        corrupted: report.corrupted,
        sigs,
    }
}

struct MultiplexedRun {
    outputs: Vec<Option<EngineOutput<Nat>>>,
    corrupted: Vec<PartyId>,
    /// `sigs[party][sid]`, scopes rebased to the session root.
    sigs: Vec<Vec<Vec<Sig>>>,
}

fn multiplexed_run(
    n: usize,
    t: usize,
    k: usize,
    attack: Attack,
    seed: u64,
    all_inputs: Vec<Vec<Nat>>,
) -> MultiplexedRun {
    let mode = if attack.is_lying() {
        Corruption::LyingHonest
    } else {
        Corruption::Scripted
    };
    let mut sim = attack
        .corrupted_parties(n, t)
        .into_iter()
        .fold(Sim::new(n), |s, p| s.corrupt(p, mode));
    if attack.strategy().is_some() {
        sim = sim.with_adversary(EnvelopeAdversary::new((0..k as u64).map(|sid| {
            let adv = attack
                .with_seed(derive_seed(seed, sid))
                .strategy()
                .expect("strategy kind is seed-independent");
            (SessionId(sid), adv)
        })));
    }
    let sink = Arc::new(RingBufferSink::new(16_000_000));
    let sim = sim.with_trace(Arc::clone(&sink) as Arc<dyn TraceSink>);

    let plan = SessionPlan::closed(k);
    let config = EngineConfig::default();
    let report = sim.run(move |ctx, _id| {
        run_engine_party(ctx, &plan, &config, |sctx, sid| {
            let input = all_inputs[sid.0 as usize][sctx.me().index()].clone();
            pi_n(sctx, &input, BaKind::TurpinCoan)
        })
    });
    let records = sink.records();
    assert_eq!(sink.total_seen() as usize, records.len(), "ring wrapped");
    let sigs = (0..n)
        .map(|p| {
            (0..k as u64)
                .map(|sid| {
                    records
                        .iter()
                        .filter(|r| r.party == Some(p as u64) && keep(&r.event))
                        .filter_map(|r| {
                            rebase(&r.scope, sid).map(|s| (r.round, s, r.event.clone()))
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    MultiplexedRun {
        outputs: report.outputs,
        corrupted: report.corrupted,
        sigs,
    }
}

/// The core property: session-by-session, the multiplexed deployment and
/// the isolated runs decide the same values, corrupt the same parties,
/// and emit the same protocol trace.
fn assert_equivalent(n: usize, k: usize, ell: usize, spread: usize, attack: Attack, seed: u64) {
    let t = max_faults(n);
    let all_inputs: Vec<Vec<Nat>> = (0..k as u64)
        .map(|sid| {
            let a = attack.with_seed(derive_seed(seed, sid));
            session_inputs(derive_seed(seed, sid), n, t, ell, spread, &a)
        })
        .collect();

    let multi = multiplexed_run(n, t, k, attack, seed, all_inputs.clone());
    for (sid, inputs) in all_inputs.iter().enumerate() {
        let iso = isolated_run(
            n,
            t,
            attack.with_seed(derive_seed(seed, sid as u64)),
            inputs.clone(),
        );
        assert_eq!(
            iso.corrupted,
            multi.corrupted,
            "[{}] s{sid}: corrupted sets differ",
            attack.name()
        );
        for p in 0..n {
            if iso.corrupted.contains(&PartyId(p)) {
                continue;
            }
            let iso_out = iso.outputs[p]
                .as_ref()
                .expect("honest isolated party decided");
            let engine_out = multi.outputs[p]
                .as_ref()
                .expect("honest multiplexed party finished");
            let multi_out = engine_out
                .output_of(SessionId(sid as u64))
                .expect("honest multiplexed party decided the session");
            assert_eq!(
                iso_out,
                multi_out,
                "[{}] s{sid}: party {p} decision differs",
                attack.name()
            );
            assert_eq!(
                iso.sigs[p],
                multi.sigs[p][sid],
                "[{}] s{sid}: party {p} trace differs",
                attack.name()
            );
        }
    }
}

/// Deterministic sweep: every plan in the standard suite.
#[test]
fn multiplexed_equals_isolated_under_every_attack() {
    for attack in Attack::standard_suite(0xE9) {
        assert_equivalent(4, 3, 40, 6, attack, 0xC0FF_EE11);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Randomized sweep over session counts, input widths, and seeds.
    #[test]
    fn multiplexed_equals_isolated_randomized(
        seed in any::<u64>(),
        k in 2usize..5,
        ell in 8usize..48,
        attack_idx in 0usize..11,
    ) {
        let attack = Attack::standard_suite(seed)[attack_idx];
        assert_equivalent(4, k, ell, 4, attack, seed);
    }
}

/// Admission control: arrivals past `max_sessions` are rejected by every
/// party identically, and the live sessions decide unperturbed.
#[test]
fn admission_rejects_past_capacity_consistently() {
    let n = 4;
    let plan = SessionPlan::open((0..8u64).map(|i| (i, 0)));
    let config = EngineConfig {
        max_sessions: 4,
        ..EngineConfig::default()
    };
    let report = Sim::new(n).run(move |ctx, _id| {
        run_engine_party(ctx, &plan, &config, |sctx, sid| {
            let input = Nat::from_u64(50 + sid.0 + sctx.me().index() as u64);
            pi_n(sctx, &input, BaKind::TurpinCoan)
        })
    });
    let outs = report.honest_outputs();
    for out in &outs {
        let rejected: Vec<u64> = out.rejected.iter().map(|s| s.0).collect();
        assert_eq!(rejected, vec![4, 5, 6, 7], "rejects must be the overflow");
        let decided: Vec<u64> = out.decided.iter().map(|(s, _)| s.0).collect();
        assert_eq!(decided, vec![0, 1, 2, 3], "live sessions must decide");
    }
    for sid in 0..4u64 {
        let first = outs[0].output_of(SessionId(sid)).unwrap();
        assert!(
            outs.iter()
                .all(|o| o.output_of(SessionId(sid)) == Some(first)),
            "parties disagree on s{sid}"
        );
    }
}

/// A service-layer flooder: per round it overfills one sender's inbox
/// quota for a live session, sprays frames for a session nobody runs,
/// and sends undecodable bytes. The engine must shed/count all of it and
/// the live sessions must still decide correctly.
#[derive(Debug)]
struct Flood {
    live: SessionId,
}

impl Adversary for Flood {
    fn on_round(&mut self, view: &RoundView<'_>) -> RoundActions {
        let mut actions = RoundActions::default();
        let Some(&from) = view.corrupted.first() else {
            return actions;
        };
        for to in (0..view.n).map(PartyId) {
            if view.corrupted.contains(&to) {
                continue;
            }
            // Overfill the per-(session, sender) inbox cap for the live
            // session (cap is 2 in this test; one envelope of 5 frames).
            let flood = Envelope {
                frames: (0..5)
                    .map(|i| SessionFrame {
                        session: self.live,
                        payload: Bytes::from(vec![0xAB, i]),
                    })
                    .collect(),
            };
            actions.sends.push(SendSpec {
                from,
                to,
                payload: Bytes::from(flood.encode_to_vec()),
            });
            // A frame for a session this deployment never admitted.
            let stray = Envelope {
                frames: vec![SessionFrame {
                    session: SessionId(999),
                    payload: Bytes::from(vec![0xCD]),
                }],
            };
            actions.sends.push(SendSpec {
                from,
                to,
                payload: Bytes::from(stray.encode_to_vec()),
            });
            // Bytes that don't decode as an envelope at all.
            actions.sends.push(SendSpec {
                from,
                to,
                payload: Bytes::from_static(&[0xFF; 3]),
            });
        }
        actions
    }
}

#[test]
fn flooding_adversary_is_shed_without_corrupting_sessions() {
    let n = 4;
    let t = max_faults(n);
    let plan = SessionPlan::closed(2);
    let config = EngineConfig {
        inbox_frames_per_sender: 2,
        ..EngineConfig::default()
    };
    let report = Sim::new(n)
        .corrupt(PartyId(n - 1), Corruption::Scripted)
        .with_adversary(Flood { live: SessionId(0) })
        .run(move |ctx, _id| {
            run_engine_party(ctx, &plan, &config, |sctx, sid| {
                let input = Nat::from_u64(300 + 7 * sid.0 + sctx.me().index() as u64);
                pi_n(sctx, &input, BaKind::TurpinCoan)
            })
        });
    assert_eq!(t, 1);
    let outs = report.honest_outputs();
    for out in &outs {
        assert_eq!(out.decided.len(), 2, "both sessions must decide");
        assert!(out.stats.shed_frames > 0, "inbox cap must shed the flood");
        assert!(
            out.stats.stray_frames > 0,
            "unknown session must be counted"
        );
        assert!(
            out.stats.malformed_envelopes > 0,
            "undecodable bytes must be counted"
        );
    }
    for sid in 0..2u64 {
        let first = outs[0].output_of(SessionId(sid)).unwrap();
        assert!(
            outs.iter()
                .all(|o| o.output_of(SessionId(sid)) == Some(first)),
            "parties disagree on s{sid}"
        );
    }
}
