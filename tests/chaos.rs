//! Chaos test: an n = 4 TCP cluster keeps deciding when one party
//! crashes mid-protocol, and the honest parties' traces are
//! byte-deterministic across runs.
//!
//! Determinism needs two ingredients: every party runs on a frozen
//! [`ManualClock`] (so the `Δ`-timeout path is never taken — rounds end
//! only on end-of-round markers and disconnect observations), and the
//! crash is scripted with a [`FaultPlan`] instead of a real kill (so it
//! lands at the same round every run). The only records whose position
//! is inherently racy are `peer_gone` observations — stream EOFs are
//! asynchronous — so the byte comparison strips those lines (their
//! *content* is still asserted separately).

use std::path::Path;
use std::time::Duration;

use convex_agreement::net::{Comm, CommExt, PartyId};
use convex_agreement::runtime::{Clock, FaultPlan, ManualClock, TcpCluster};
use convex_agreement::trace::{check, read_jsonl, Event};

const N: usize = 4;
const CRASH_PARTY: usize = 3;
const CRASH_ROUND: u64 = 3;
const ROUNDS: u64 = 6;
const INPUTS: [u64; N] = [10, 40, 20, 30];

/// Iterated midpoint over `u64`: a convex-agreement stand-in that is
/// deterministic, converges fast, and — crucially for a chaos test —
/// tolerates empty inboxes (a crashed party's transport returns nothing,
/// and the protocol code on top must not panic).
fn iterated_midpoint(ctx: &mut dyn Comm, id: PartyId) -> u64 {
    ctx.scoped("chaos", |ctx| {
        let mut v = INPUTS[id.index()];
        ctx.trace_input(|| v.to_string());
        for _ in 0..ROUNDS {
            let inbox = ctx.exchange(&v);
            let vals: Vec<u64> = inbox
                .decode_each::<u64>()
                .into_iter()
                .map(|(_, x)| x)
                .collect();
            if let (Some(&min), Some(&max)) = (vals.iter().min(), vals.iter().max()) {
                v = min + (max - min) / 2;
            }
        }
        ctx.trace_decide(|| v.to_string());
        v
    })
}

fn run_cluster(trace_dir: &Path) -> convex_agreement::runtime::ClusterReport<u64> {
    TcpCluster::new(N)
        // Δ is huge on purpose: under a frozen clock the timeout path
        // must never fire; rounds end via markers and EOFs alone.
        .with_delta(Duration::from_secs(3600))
        .with_clock_factory(|_| -> Box<dyn Clock> { Box::new(ManualClock::new()) })
        .with_fault_plan(CRASH_PARTY, FaultPlan::new().crash_at(CRASH_ROUND))
        .with_trace_dir(trace_dir)
        .run_report(iterated_midpoint)
        .expect("cluster run")
}

/// Trace bytes with the racy `peer_gone` observation lines removed.
fn stable_lines(path: &Path) -> String {
    std::fs::read_to_string(path)
        .expect("trace file")
        .lines()
        .filter(|line| !line.contains("\"ev\":\"peer_gone\""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn cluster_decides_with_one_party_crashed_and_traces_deterministically() {
    let base = std::env::temp_dir().join(format!("ca_chaos_{}", std::process::id()));
    let dir_a = base.join("run_a");
    let dir_b = base.join("run_b");

    let report = run_cluster(&dir_a);

    // Every honest party decided, they agree, and the decision lies in
    // the honest input hull.
    let honest: Vec<u64> = (0..N)
        .filter(|&i| i != CRASH_PARTY)
        .map(|i| report.outputs[i])
        .collect();
    assert!(
        honest.windows(2).all(|w| w[0] == w[1]),
        "honest parties disagree: {honest:?}"
    );
    assert!(
        (10..=40).contains(&honest[0]),
        "decision {} outside input hull",
        honest[0]
    );

    // Every party ran the full schedule of rounds (the crashed party's
    // transport keeps counting calls; it just does nothing).
    assert_eq!(report.rounds, vec![ROUNDS; N]);

    // Each honest party observed exactly the crashed peer as gone; the
    // crashed party stops observing anything.
    for i in 0..N {
        let expected = u64::from(i != CRASH_PARTY);
        assert_eq!(
            report.stats[i].peers_gone, expected,
            "party {i} peers_gone: {:?}",
            report.stats[i]
        );
    }

    // The crashed party's trace records the injected fault; honest
    // traces each record the crashed peer's disappearance exactly once.
    for i in 0..N {
        let records = read_jsonl(&dir_a.join(format!("party_{i}.jsonl"))).expect("trace");
        let faults: Vec<_> = records
            .iter()
            .filter_map(|r| match &r.event {
                Event::FaultInjected { strategy } => Some((r.round, strategy.clone())),
                _ => None,
            })
            .collect();
        let gone: Vec<_> = records
            .iter()
            .filter_map(|r| match &r.event {
                Event::PeerGone { peer, reason } => Some((*peer, reason.clone())),
                _ => None,
            })
            .collect();
        if i == CRASH_PARTY {
            assert_eq!(faults, vec![(CRASH_ROUND, "crash".to_owned())]);
            assert_eq!(gone, vec![]);
        } else {
            assert_eq!(faults, vec![], "honest party {i} traced a fault");
            assert_eq!(
                gone,
                vec![(CRASH_PARTY as u64, "eof".to_owned())],
                "party {i}"
            );
        }
    }

    // The combined trace passes every invariant: the crashed party is
    // excluded (FaultInjected) and honest decides sit in the honest
    // input hull.
    let mut all = Vec::new();
    for i in 0..N {
        all.extend(read_jsonl(&dir_a.join(format!("party_{i}.jsonl"))).expect("trace"));
    }
    assert_eq!(check(&all), vec![]);

    // A second identical run produces byte-identical honest timelines
    // (modulo the stripped peer_gone observations).
    let report_b = run_cluster(&dir_b);
    assert_eq!(report.outputs, report_b.outputs);
    for i in 0..N {
        let a = stable_lines(&dir_a.join(format!("party_{i}.jsonl")));
        let b = stable_lines(&dir_b.join(format!("party_{i}.jsonl")));
        assert_eq!(a, b, "party {i} trace differs between identical runs");
    }

    std::fs::remove_dir_all(&base).ok();
}

/// Adversarial conformance of the fault-adaptive `Π_ℕ`: the
/// [`Attack::conformance_suite`] schedules are aimed squarely at an
/// optimistic fast path — misbehave exactly at the budget (`f = t` from
/// round 0), look clean then crash, or start faulting late — and under
/// every one of them the adaptive protocol must decide exactly what the
/// worst-case-only protocol decides, with traces that pass `ca-trace
/// check` and are byte-deterministic across reruns.
mod fast_path_conformance {
    use std::sync::Arc;

    use convex_agreement::adversary::Attack;
    use convex_agreement::ba::BaKind;
    use convex_agreement::bits::Nat;
    use convex_agreement::core::{pi_n_adaptive, FastPathConfig};
    use convex_agreement::net::{max_faults, Sim};
    use convex_agreement::trace::{
        check, first_divergence, Event, Record, RingBufferSink, TraceSink,
    };

    const CN: usize = 7;
    const UNANIMOUS: u64 = 4242;

    /// Runs `pi_n_adaptive` at `n = 7`, `f = t` with unanimous honest
    /// inputs under `attack`; returns honest outputs plus the full trace.
    fn traced_adaptive(attack: Attack, cfg: FastPathConfig) -> (Vec<Nat>, Vec<Record>) {
        let t = max_faults(CN);
        let sink = Arc::new(RingBufferSink::new(8_000_000));
        let report = attack
            .install(Sim::new(CN), CN, t)
            .with_trace(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .run(move |ctx, _| {
                pi_n_adaptive(ctx, &Nat::from_u64(UNANIMOUS), BaKind::TurpinCoan, cfg)
            });
        let outs = report.honest_outputs().into_iter().cloned().collect();
        let records = sink.records();
        assert_eq!(sink.total_seen() as usize, records.len(), "ring wrapped");
        (outs, records)
    }

    fn took_fast_path(records: &[Record]) -> bool {
        records
            .iter()
            .any(|r| matches!(r.event, Event::FastPathTaken { .. }))
    }

    #[test]
    fn conformance_suite_agrees_across_paths_with_clean_deterministic_traces() {
        let t = max_faults(CN);
        let mut fallback_runs = 0usize;
        for attack in Attack::conformance_suite(17) {
            // Honest parties are unanimous, so the honest hull is a single
            // point: whichever path each run takes, the only correct
            // decision is the unanimous input.
            let (outs, records) = traced_adaptive(attack, FastPathConfig::default());
            assert_eq!(
                outs,
                vec![Nat::from_u64(UNANIMOUS); CN - t],
                "wrong decisions [{}]",
                attack.name()
            );

            // Cross-path agreement: a run with the fast path disabled
            // (pure worst-case protocol) decides the identical value.
            let disabled = FastPathConfig {
                enabled: false,
                ..FastPathConfig::default()
            };
            let (slow_outs, _) = traced_adaptive(attack, disabled);
            assert_eq!(
                outs,
                slow_outs,
                "cross-path disagreement [{}]",
                attack.name()
            );

            // Every trace invariant holds under attack — including the
            // fast-path hull and cross-path agreement rules.
            let violations = check(&records);
            assert!(violations.is_empty(), "[{}] {violations:?}", attack.name());

            // Byte-determinism: an identical rerun reproduces the trace
            // down to the JSONL byte.
            let (outs_b, records_b) = traced_adaptive(attack, FastPathConfig::default());
            assert_eq!(outs, outs_b, "[{}]", attack.name());
            assert!(
                first_divergence(&records, &records_b).is_none(),
                "nondeterministic trace [{}]",
                attack.name()
            );
            let jsonl = |rs: &[Record]| {
                rs.iter()
                    .map(Record::to_jsonl)
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(jsonl(&records), jsonl(&records_b), "[{}]", attack.name());

            if !took_fast_path(&records) {
                fallback_runs += 1;
            }
        }
        // The matrix must exercise the certified fallback: a crash from
        // round 0 leaves every offer round incomplete.
        assert!(
            fallback_runs > 0,
            "no conformance attack forced the fallback"
        );
    }
}
