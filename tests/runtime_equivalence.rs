//! Simulator ↔ TCP runtime equivalence: the identical protocol code must
//! produce identical outputs on both transports (honest runs; the TCP
//! runtime is a deployment demo, not a metered testbed).

use std::time::Duration;

use convex_agreement::ba::BaKind;
use convex_agreement::bits::Int;
use convex_agreement::core::{check_agreement, pi_z};
use convex_agreement::net::Sim;
use convex_agreement::runtime::TcpCluster;

#[test]
fn pi_z_same_output_on_both_transports() {
    let n = 4;
    let inputs: Vec<Int> = vec![-7, 13, 2, 4].into_iter().map(Int::from_i64).collect();

    let sim_out: Vec<Int> = {
        let inputs = inputs.clone();
        Sim::new(n)
            .run(move |ctx, id| pi_z(ctx, &inputs[id.index()], BaKind::TurpinCoan))
            .honest_outputs()
            .into_iter()
            .cloned()
            .collect()
    };

    let tcp_out: Vec<Int> = {
        let inputs = inputs.clone();
        TcpCluster::new(n)
            .with_delta(Duration::from_millis(2000))
            .run(move |ctx, id| pi_z(ctx, &inputs[id.index()], BaKind::TurpinCoan))
            .expect("tcp cluster")
    };

    assert!(check_agreement(&sim_out));
    assert!(check_agreement(&tcp_out));
    assert_eq!(sim_out[0], tcp_out[0], "transports disagree");
}

#[test]
fn tcp_cluster_tolerates_generous_delta() {
    // Just a smoke: a 3-party cluster with large Δ still terminates fast
    // because EOR markers short-circuit the timeout.
    let outputs = TcpCluster::new(3)
        .with_delta(Duration::from_secs(5))
        .run(|ctx, id| {
            pi_z(
                ctx,
                &Int::from_i64(100 + id.index() as i64),
                BaKind::TurpinCoan,
            )
        })
        .expect("cluster");
    assert!(check_agreement(&outputs));
}
