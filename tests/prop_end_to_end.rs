//! Property-based end-to-end tests: random sizes, inputs, and adversaries
//! through the full `Π_ℤ` stack — Definition 1 must hold for every sample.

use convex_agreement::adversary::{Attack, LieKind};
use convex_agreement::ba::BaKind;
use convex_agreement::bits::Int;
use convex_agreement::core::{check_agreement, check_convex_validity, pi_z};
use convex_agreement::net::Sim;
use proptest::prelude::*;

fn run_case(n: usize, mut inputs: Vec<Int>, attack: Attack) {
    let t = convex_agreement::net::max_faults(n);
    if attack.is_lying() {
        for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
            inputs[p.index()] = match attack.lie_for(idx).unwrap() {
                LieKind::ExtremeHigh => Int::from_i64(i64::MAX),
                LieKind::ExtremeLow => Int::from_i64(i64::MIN),
                LieKind::Split => unreachable!(),
            };
        }
    }
    let sim = attack.install(Sim::new(n), n, t);
    let inputs_run = inputs.clone();
    let report = sim.run(move |ctx, id| pi_z(ctx, &inputs_run[id.index()], BaKind::TurpinCoan));
    let honest_inputs: Vec<Int> = report
        .honest_parties()
        .iter()
        .map(|p| inputs[p.index()].clone())
        .collect();
    let outputs: Vec<Int> = report.honest_outputs().into_iter().cloned().collect();
    assert!(check_agreement(&outputs), "agreement [{}]", attack.name());
    assert!(
        check_convex_validity(&outputs, &honest_inputs),
        "validity [{}]: {:?} ∉ hull of {:?}",
        attack.name(),
        outputs.first(),
        honest_inputs
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn prop_pi_z_definition1(
        n in 4usize..8,
        raw in proptest::collection::vec(any::<i64>(), 8),
        attack_idx in 0usize..11,
        seed in any::<u64>(),
    ) {
        let inputs: Vec<Int> = raw[..n].iter().map(|&v| Int::from_i64(v)).collect();
        let attack = Attack::standard_suite(seed)[attack_idx];
        run_case(n, inputs, attack);
    }

    #[test]
    fn prop_pi_z_clustered_inputs(
        n in 4usize..8,
        center in -1_000_000i64..1_000_000,
        jitter in proptest::collection::vec(-50i64..50, 8),
        attack_idx in 0usize..11,
    ) {
        let inputs: Vec<Int> = jitter[..n]
            .iter()
            .map(|&j| Int::from_i64(center.saturating_add(j)))
            .collect();
        let attack = Attack::standard_suite(7)[attack_idx];
        run_case(n, inputs, attack);
    }
}
