//! Property-based end-to-end tests: random sizes, inputs, and adversaries
//! through the full `Π_ℤ` stack — Definition 1 must hold for every sample —
//! and through the fault-adaptive `Π_ℕ`, whose guarantees must not depend
//! on which path (fast or fallback) a run happens to take.

use std::sync::Arc;

use convex_agreement::adversary::{Attack, LieKind};
use convex_agreement::ba::BaKind;
use convex_agreement::bits::{Int, Nat};
use convex_agreement::core::{
    check_agreement, check_convex_validity, pi_n_adaptive, pi_z, FastPathConfig,
};
use convex_agreement::net::{Corruption, PartyId, Sim};
use convex_agreement::trace::{check, Event, RingBufferSink, TraceSink};
use proptest::prelude::*;

fn run_case(n: usize, mut inputs: Vec<Int>, attack: Attack) {
    let t = convex_agreement::net::max_faults(n);
    if attack.is_lying() {
        for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
            inputs[p.index()] = match attack.lie_for(idx).unwrap() {
                LieKind::ExtremeHigh => Int::from_i64(i64::MAX),
                LieKind::ExtremeLow => Int::from_i64(i64::MIN),
                LieKind::Split => unreachable!(),
            };
        }
    }
    let sim = attack.install(Sim::new(n), n, t);
    let inputs_run = inputs.clone();
    let report = sim.run(move |ctx, id| pi_z(ctx, &inputs_run[id.index()], BaKind::TurpinCoan));
    let honest_inputs: Vec<Int> = report
        .honest_parties()
        .iter()
        .map(|p| inputs[p.index()].clone())
        .collect();
    let outputs: Vec<Int> = report.honest_outputs().into_iter().cloned().collect();
    assert!(check_agreement(&outputs), "agreement [{}]", attack.name());
    assert!(
        check_convex_validity(&outputs, &honest_inputs),
        "validity [{}]: {:?} ∉ hull of {:?}",
        attack.name(),
        outputs.first(),
        honest_inputs
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn prop_pi_z_definition1(
        n in 4usize..8,
        raw in proptest::collection::vec(any::<i64>(), 8),
        attack_idx in 0usize..11,
        seed in any::<u64>(),
    ) {
        let inputs: Vec<Int> = raw[..n].iter().map(|&v| Int::from_i64(v)).collect();
        let attack = Attack::standard_suite(seed)[attack_idx];
        run_case(n, inputs, attack);
    }

    /// Random inputs and a random fault count `f ≤ t` of silent parties
    /// through `pi_n_adaptive`: agreement, convex validity, and every
    /// trace invariant hold regardless of path. The path itself is fully
    /// determined by the actual faults under the strict budget (0):
    /// `f = 0` takes the fast path everywhere, any `f > 0` forces the
    /// certified fallback — i.e. `FallbackTriggered` implies the observed
    /// faults exceed the fast-path budget.
    #[test]
    fn prop_pi_n_adaptive_any_path(
        n in 4usize..8,
        raw in proptest::collection::vec(any::<u64>(), 8),
        f_raw in 0usize..3,
    ) {
        let t = convex_agreement::net::max_faults(n);
        let f = f_raw.min(t);
        let inputs: Vec<Nat> = raw[..n].iter().map(|&v| Nat::from_u64(v)).collect();

        let sink = Arc::new(RingBufferSink::new(8_000_000));
        let mut sim = Sim::new(n).with_trace(Arc::clone(&sink) as Arc<dyn TraceSink>);
        for p in n - f..n {
            sim = sim.corrupt(PartyId(p), Corruption::Scripted);
        }
        let inputs_run = inputs.clone();
        let report = sim.run(move |ctx, id| {
            pi_n_adaptive(ctx, &inputs_run[id.index()], BaKind::TurpinCoan, FastPathConfig::default())
        });

        let honest_inputs: Vec<Nat> = report
            .honest_parties()
            .iter()
            .map(|p| inputs[p.index()].clone())
            .collect();
        let outputs: Vec<Nat> = report.honest_outputs().into_iter().cloned().collect();
        prop_assert!(check_agreement(&outputs), "agreement [f = {f}]");
        prop_assert!(
            check_convex_validity(&outputs, &honest_inputs),
            "validity [f = {f}]: {:?} ∉ hull of {:?}",
            outputs.first(),
            honest_inputs
        );

        let records = sink.records();
        prop_assert_eq!(sink.total_seen() as usize, records.len(), "ring wrapped");
        let violations = check(&records);
        prop_assert!(violations.is_empty(), "violations [f = {f}]: {violations:?}");

        let fast = records
            .iter()
            .filter(|r| matches!(r.event, Event::FastPathTaken { .. }))
            .count();
        let fell_back = records
            .iter()
            .any(|r| matches!(r.event, Event::FallbackTriggered { .. }));
        // FallbackTriggered ⇒ observed faults > budget (0 here) ⇒ f > 0.
        prop_assert!(!fell_back || f > 0, "fallback with zero faults");
        if f == 0 {
            prop_assert_eq!(fast, n, "fault-free must go fast everywhere");
        } else {
            // A silent party from round 0 leaves every offer incomplete.
            prop_assert_eq!(fast, 0, "fast path with {} silent parties", f);
            prop_assert!(fell_back, "no fallback marker with {f} silent parties");
        }
    }

    /// The combined attack matrix (standard + conformance) against
    /// `pi_n_adaptive`: Definition 1 plus clean trace invariants, however
    /// nasty the message-level schedule.
    #[test]
    fn prop_pi_n_adaptive_attack_matrix(
        n in 4usize..8,
        raw in proptest::collection::vec(any::<u64>(), 8),
        attack_idx in 0usize..16,
        seed in any::<u64>(),
    ) {
        let t = convex_agreement::net::max_faults(n);
        let attack = {
            let mut all = Attack::standard_suite(seed);
            all.extend(Attack::conformance_suite(seed));
            all[attack_idx]
        };
        let mut inputs: Vec<Nat> = raw[..n].iter().map(|&v| Nat::from_u64(v)).collect();
        if attack.is_lying() {
            for (idx, p) in attack.corrupted_parties(n, t).iter().enumerate() {
                inputs[p.index()] = match attack.lie_for(idx).unwrap() {
                    LieKind::ExtremeHigh => Nat::from_u64(u64::MAX),
                    LieKind::ExtremeLow => Nat::from_u64(0),
                    LieKind::Split => unreachable!(),
                };
            }
        }

        let sink = Arc::new(RingBufferSink::new(8_000_000));
        let sim = attack
            .install(Sim::new(n), n, t)
            .with_trace(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let inputs_run = inputs.clone();
        let report = sim.run(move |ctx, id| {
            pi_n_adaptive(ctx, &inputs_run[id.index()], BaKind::TurpinCoan, FastPathConfig::default())
        });

        let honest_inputs: Vec<Nat> = report
            .honest_parties()
            .iter()
            .map(|p| inputs[p.index()].clone())
            .collect();
        let outputs: Vec<Nat> = report.honest_outputs().into_iter().cloned().collect();
        prop_assert!(check_agreement(&outputs), "agreement [{}]", attack.name());
        prop_assert!(
            check_convex_validity(&outputs, &honest_inputs),
            "validity [{}]: {:?} ∉ hull of {:?}",
            attack.name(),
            outputs.first(),
            honest_inputs
        );
        let records = sink.records();
        prop_assert_eq!(sink.total_seen() as usize, records.len(), "ring wrapped");
        let violations = check(&records);
        prop_assert!(violations.is_empty(), "violations [{}]: {violations:?}", attack.name());
    }

    #[test]
    fn prop_pi_z_clustered_inputs(
        n in 4usize..8,
        center in -1_000_000i64..1_000_000,
        jitter in proptest::collection::vec(-50i64..50, 8),
        attack_idx in 0usize..11,
    ) {
        let inputs: Vec<Int> = jitter[..n]
            .iter()
            .map(|&j| Int::from_i64(center.saturating_add(j)))
            .collect();
        let attack = Attack::standard_suite(7)[attack_idx];
        run_case(n, inputs, attack);
    }
}
