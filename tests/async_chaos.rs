//! Chaos test for the asynchronous path: n = 4 parties run Δ-free
//! approximate agreement under a seeded adversarial delivery schedule —
//! heavy jitter (so messages reorder freely), one artificially slow edge
//! — while one party crashes mid-protocol. The three survivors must
//! still reach ε-agreement inside the input hull, the trace must satisfy
//! every `ca-trace check` invariant, and the whole run must be
//! byte-reproducible: two executions of the same configuration produce
//! identical record streams.
//!
//! This is the async twin of `tests/chaos.rs` (which exercises the
//! synchronous TCP runtime). Determinism here is cheaper to state: the
//! executor is single-threaded over a seeded schedule, so there are no
//! racy `peer_gone` lines to strip — the full streams must match.

use std::sync::Arc;

use convex_agreement::asynchrony::{rounds_for_spread, AsyncApprox, DeliverySchedule, Executor};
use convex_agreement::bits::Nat;
use convex_agreement::net::{EdgeRule, PartyId};
use convex_agreement::trace::{check, first_divergence, Record, RingBufferSink, TraceSink};

const N: usize = 4;
const T: usize = 1;
const CRASH_PARTY: usize = 3;
/// Virtual time of the scripted crash. Edge delays are sampled from
/// `1 + U[0, 50]`, so by t = 90 the first async round is in full swing
/// (RBC echoes and readys in flight) but nobody has decided yet.
const CRASH_AT: u64 = 90;
const SEED: u64 = 0xC4A05;
const INPUTS: [u64; N] = [5, 1000, 250, 700];

fn inputs() -> Vec<Nat> {
    INPUTS.iter().copied().map(Nat::from_u64).collect()
}

/// One full chaos run: returns the survivors' decisions alongside the
/// complete trace record stream.
fn chaos_run() -> (Vec<Option<Nat>>, Vec<Record>) {
    let spread = Nat::from_u64(INPUTS.iter().max().unwrap() - INPUTS.iter().min().unwrap());
    let rounds = rounds_for_spread(&spread);
    let parties: Vec<_> = inputs()
        .into_iter()
        .enumerate()
        .map(|(i, v)| AsyncApprox::new(N, T, PartyId(i), v, rounds))
        .collect();
    // Base 1, jitter 50: sampled delays span 1..=51, so a message sent
    // later routinely overtakes one sent earlier. The extra rule makes
    // the 1→2 edge another ~40 units slower — enough that party 2 sees
    // whole quorums complete before party 1's contributions arrive.
    let schedule = DeliverySchedule::uniform(SEED, 1, 50).with_rule(EdgeRule {
        from: Some(1),
        to: Some(2),
        extra_delay: 40,
        drop_pct: 0,
    });
    let sink = Arc::new(RingBufferSink::new(16_000_000));
    let report = Executor::new(parties, schedule)
        .crash_at(PartyId(CRASH_PARTY), CRASH_AT)
        .with_trace(Arc::clone(&sink) as Arc<dyn TraceSink>)
        .run();
    let records = sink.records();
    assert_eq!(
        sink.total_seen() as usize,
        records.len(),
        "ring wrapped; grow the capacity"
    );
    assert_eq!(report.crashed, vec![CRASH_PARTY], "crash plan must fire");
    (report.outputs, records)
}

/// Survivors of a mid-protocol crash still decide — ε-close (ε = 1) and
/// inside the input hull — with zero Δ anywhere in the configuration.
#[test]
fn async_survivors_decide_under_reorder_and_crash() {
    let (outputs, records) = chaos_run();

    assert!(
        outputs[CRASH_PARTY].is_none(),
        "crashed party must not report a decision"
    );
    let survivors: Vec<&Nat> = outputs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != CRASH_PARTY)
        .map(|(i, o)| o.as_ref().unwrap_or_else(|| panic!("party {i} undecided")))
        .collect();
    assert_eq!(survivors.len(), N - 1);

    let lo = survivors.iter().min().unwrap();
    let hi = survivors.iter().max().unwrap();
    assert!(
        hi.checked_sub(lo).unwrap() <= Nat::one(),
        "survivors not ε-close: {survivors:?}"
    );
    let hull_lo = Nat::from_u64(*INPUTS.iter().min().unwrap());
    let hull_hi = Nat::from_u64(*INPUTS.iter().max().unwrap());
    assert!(
        **lo >= hull_lo && **hi <= hull_hi,
        "decisions escape the input hull: {survivors:?}"
    );

    // The trace must be structurally clean: the crash is recorded as an
    // injected fault, so the checker exempts party 3 from the
    // everyone-decides invariant; everything else must hold.
    let violations = check(&records);
    assert!(violations.is_empty(), "violations: {violations:?}");
    assert!(
        records.iter().any(|r| r.party == Some(CRASH_PARTY as u64)
            && matches!(
                &r.event,
                convex_agreement::trace::Event::FaultInjected { .. }
            )),
        "crash must surface as a FaultInjected record"
    );
}

/// Two runs of the identical configuration are byte-identical — the
/// reproducibility contract that makes async failures debuggable.
#[test]
fn async_chaos_trace_is_byte_reproducible() {
    let (out_a, trace_a) = chaos_run();
    let (out_b, trace_b) = chaos_run();
    assert_eq!(out_a, out_b, "outputs diverge across reruns");
    assert!(
        first_divergence(&trace_a, &trace_b).is_none(),
        "nondeterministic async trace"
    );
    assert!(!trace_a.is_empty());
}
