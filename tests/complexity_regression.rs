//! Complexity regression tests: the *measured* `BITSℓ` / `ROUNDSℓ` must
//! stay within constant factors of the paper's bounds, and the asymptotic
//! orderings the paper claims must hold at concrete sizes.
//!
//! These tests pin the communication-optimality result so a refactor that
//! silently inflates communication fails CI.

use convex_agreement::adversary::Attack;
use convex_agreement::ba::BaKind;
use convex_agreement::bits::Nat;
use convex_agreement::core::pi_n;
use convex_agreement::crypto::KAPPA_BITS;
use convex_agreement::net::Sim;

fn clustered(seed: u64, n: usize, ell: usize) -> Vec<Nat> {
    // Inline clustered generator (ca-bench is not a dependency of the
    // umbrella crate's tests): shared top half, party-specific low half.
    (0..n)
        .map(|i| {
            let top = Nat::all_ones(ell / 2 + 1);
            let low = Nat::from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64));
            let mut bits = top.to_bits_len(ell).unwrap();
            let low_bits = low.to_bits_len(64).unwrap();
            for j in 0..64.min(ell) {
                bits.set(ell - 1 - j, low_bits.get(63 - j));
            }
            bits.set(0, true);
            bits.val()
        })
        .collect()
}

fn measure_pi_n(n: usize, ell: usize) -> (u64, u64) {
    let inputs = clustered(ell as u64, n, ell);
    let report = Sim::new(n).run(move |ctx, id| pi_n(ctx, &inputs[id.index()], BaKind::TurpinCoan));
    (report.metrics.honest_bits, report.metrics.rounds)
}

#[test]
fn pi_n_bits_within_theorem_bound() {
    // Cor. 2 shape with our Π_BA substitution:
    //   BITS ≤ C · (ℓn + κ·n²·log²n + n³·log n)
    // Empirically C ≈ 3–6; assert a generous C = 40 so only real
    // regressions (an extra n factor) trip it.
    for (n, ell) in [(4usize, 1usize << 12), (7, 1 << 12), (10, 1 << 14)] {
        let (bits, _) = measure_pi_n(n, ell);
        let nf = n as f64;
        let log_n = nf.log2().max(1.0);
        let bound = 40.0
            * (ell as f64 * nf
                + KAPPA_BITS as f64 * nf * nf * log_n * log_n
                + nf * nf * nf * log_n);
        assert!(
            (bits as f64) < bound,
            "n = {n}, ℓ = {ell}: {bits} bits exceeds bound {bound}"
        );
    }
}

#[test]
fn pi_n_rounds_within_n_log_n() {
    for (n, ell) in [(4usize, 1usize << 10), (7, 1 << 10), (13, 1 << 10)] {
        let (_, rounds) = measure_pi_n(n, ell);
        let nf = n as f64;
        let bound = 60.0 * nf * nf.log2().max(1.0);
        assert!(
            (rounds as f64) < bound,
            "n = {n}: {rounds} rounds exceeds O(n log n) bound {bound}"
        );
    }
}

#[test]
fn value_term_scales_linearly_in_ell() {
    // Doubling ℓ must add ≈ 2·Δℓ·n·(n/(n−t))-ish bits, NOT Δℓ·n² — this is
    // the optimality headline. Check the marginal cost of going from 2^14
    // to 2^15 at n = 7 is below 4·Δℓ·n (comfortably under Δℓ·n²/2).
    let n = 7;
    let (b1, _) = measure_pi_n(n, 1 << 14);
    let (b2, _) = measure_pi_n(n, 1 << 15);
    let delta_ell = (1u64 << 15) - (1 << 14);
    let marginal = b2.saturating_sub(b1);
    assert!(
        marginal < 4 * delta_ell * n as u64,
        "marginal cost {marginal} not linear in ℓ (Δℓ·n = {})",
        delta_ell * n as u64
    );
}

#[test]
fn ordering_at_large_ell() {
    // At ℓ = 2^14 the paper's protocol must beat both baselines on wires.
    use convex_agreement::core::{broadcast_ca, high_cost_ca};
    let n = 7;
    let ell = 1 << 14;
    let inputs = clustered(99, n, ell);

    let ours = {
        let inputs = inputs.clone();
        Sim::new(n)
            .run(move |ctx, id| pi_n(ctx, &inputs[id.index()], BaKind::TurpinCoan))
            .metrics
            .honest_bits
    };
    let bc = {
        let inputs = inputs.clone();
        Sim::new(n)
            .run(move |ctx, id| broadcast_ca(ctx, inputs[id.index()].clone(), BaKind::TurpinCoan))
            .metrics
            .honest_bits
    };
    let hc = {
        let inputs = inputs.clone();
        Sim::new(n)
            .run(move |ctx, id| high_cost_ca(ctx, inputs[id.index()].clone(), |_| true))
            .metrics
            .honest_bits
    };
    assert!(
        ours < bc,
        "pi_n ({ours}) must beat broadcast_ca ({bc}) at ℓ = 2^14"
    );
    assert!(bc < hc, "broadcast_ca ({bc}) must beat high_cost_ca ({hc})");
    let _ = Attack::none();
}
