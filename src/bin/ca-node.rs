//! `ca-node`: run one convex-agreement party as a real network process.
//!
//! Start `n` of these (any mix of machines/terminals), all with the same
//! `--peers` list; each runs `Π_ℤ` over TCP and prints the agreed value.
//!
//! ```text
//! ca-node --index 0 --peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004 --input -1005
//! ca-node --index 1 --peers ...                                          --input -1004
//! ...
//! ```
//!
//! Options:
//!   --index <i>       this party's position in the peers list (required)
//!   --peers <list>    comma-separated host:port for ALL parties (required)
//!   --input <int>     this party's integer input (required)
//!   --scale <d>       interpret input as fixed-point with d decimals
//!   --delta-ms <ms>   synchrony bound Δ (default 500)

use std::net::SocketAddr;
use std::process::exit;
use std::time::Duration;

use convex_agreement::bits::{Fixed, Int};
use convex_agreement::core::CaProtocol;
use convex_agreement::net::PartyId;
use convex_agreement::runtime::TcpParty;

struct Args {
    index: usize,
    peers: Vec<SocketAddr>,
    input: String,
    scale: Option<u32>,
    delta: Duration,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: ca-node --index <i> --peers <h:p,h:p,...> --input <int> [--scale <d>] [--delta-ms <ms>]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut index = None;
    let mut peers = None;
    let mut input = None;
    let mut scale = None;
    let mut delta = Duration::from_millis(500);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage("missing value"));
        match flag.as_str() {
            "--index" => index = Some(value().parse().unwrap_or_else(|_| usage("bad --index"))),
            "--peers" => {
                let list: Result<Vec<SocketAddr>, _> = value().split(',').map(str::parse).collect();
                peers = Some(list.unwrap_or_else(|_| usage("bad --peers")));
            }
            "--input" => input = Some(value()),
            "--scale" => scale = Some(value().parse().unwrap_or_else(|_| usage("bad --scale"))),
            "--delta-ms" => {
                delta = Duration::from_millis(
                    value().parse().unwrap_or_else(|_| usage("bad --delta-ms")),
                )
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    Args {
        index: index.unwrap_or_else(|| usage("--index required")),
        peers: peers.unwrap_or_else(|| usage("--peers required")),
        input: input.unwrap_or_else(|| usage("--input required")),
        scale,
        delta,
    }
}

fn main() {
    let args = parse_args();
    let n = args.peers.len();
    if args.index >= n {
        usage("--index out of range");
    }
    let proto = CaProtocol::new();

    eprintln!(
        "ca-node {}/{n}: binding {}, Δ = {:?}",
        args.index, args.peers[args.index], args.delta
    );
    let mut comm = match TcpParty::establish(PartyId(args.index), &args.peers, args.delta) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to establish clique: {e}");
            exit(1);
        }
    };
    eprintln!("ca-node {}: clique established, running Π_ℤ", args.index);

    match args.scale {
        Some(scale) => {
            let input = Fixed::parse(&args.input, scale)
                .unwrap_or_else(|e| usage(&format!("bad --input: {e}")));
            let out = proto.run_fixed(&mut comm, &input);
            println!("{out}");
        }
        None => {
            let input: Int = args
                .input
                .parse()
                .unwrap_or_else(|_| usage("bad --input: not an integer"));
            let out = proto.run_int(&mut comm, &input);
            println!("{out}");
        }
    }
}
