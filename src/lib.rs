//! # convex-agreement
//!
//! A from-scratch Rust implementation of **“Communication-Optimal Convex
//! Agreement”** (Ghinea, Liu-Zhang, Wattenhofer; PODC 2024): Convex
//! Agreement on integers at communication `O(ℓn + κ·n²·log²n)` for `ℓ`-bit
//! inputs under `t < n/3` byzantine corruptions in the synchronous,
//! unauthenticated model — plus every substrate the protocol stands on and
//! a measurement harness reproducing each of the paper's claims.
//!
//! ## Crate map
//!
//! * [`core`] — the paper's protocols: `Π_ℤ`, `Π_ℕ`, `FixedLengthCA`(+
//!   blocks), `HighCostCA`, and the broadcast-based baseline.
//! * [`ba`] — the BA stack: phase-king, Turpin–Coan, `Π_BA+`, `Π_ℓBA+`.
//! * [`net`] — the synchronous-model simulator with exact `BITSℓ`/`ROUNDSℓ`
//!   accounting and rushing adaptive adversaries.
//! * [`adversary`] — the byzantine strategy library.
//! * [`trace`] — structured protocol tracing: typed event records, sinks,
//!   invariant checking (`ca-trace check`), timeline reports and diffs.
//! * [`asynchrony`] — the asynchronous kernel: event-driven protocol state
//!   machines (reliable broadcast, witness quorums, Δ-free approximate
//!   agreement) under a deterministic seeded executor.
//! * [`runtime`] — the tokio TCP deployment runtime (same protocol code,
//!   real sockets), including an event-driven driver for async protocols.
//! * [`engine`] — the multi-tenant agreement service: N concurrent CA
//!   sessions per party multiplexed over one transport, with admission
//!   control, backpressure, and a load-generation harness.
//! * [`bits`], [`crypto`], [`erasure`], [`codec`] — value domain, SHA-256 +
//!   Merkle accumulators, Reed–Solomon codes, wire codec.
//!
//! ## Quickstart
//!
//! ```
//! use convex_agreement::bits::Int;
//! use convex_agreement::core::CaProtocol;
//! use convex_agreement::net::{Corruption, PartyId, Sim};
//!
//! let inputs: Vec<Int> = vec![-1005, -1004, -1004, -1003, -1005, 10_000, 10_000]
//!     .into_iter().map(Int::from_i64).collect();
//! let proto = CaProtocol::new();
//! let report = Sim::new(7)
//!     .corrupt(PartyId(5), Corruption::LyingHonest)
//!     .corrupt(PartyId(6), Corruption::LyingHonest)
//!     .run(|ctx, id| proto.run_int(ctx, &inputs[id.index()]));
//! let outputs = report.honest_outputs();
//! assert!(outputs.windows(2).all(|w| w[0] == w[1]));
//! assert!(*outputs[0] <= Int::from_i64(-1003) && *outputs[0] >= Int::from_i64(-1005));
//! ```

pub use ca_adversary as adversary;
// `async` is a keyword, so the asynchronous kernel re-exports under a
// pronounceable alias rather than `r#async`.
pub use ca_async as asynchrony;
pub use ca_ba as ba;
pub use ca_bits as bits;
pub use ca_codec as codec;
pub use ca_core as core;
pub use ca_crypto as crypto;
pub use ca_engine as engine;
pub use ca_erasure as erasure;
pub use ca_net as net;
pub use ca_runtime as runtime;
pub use ca_trace as trace;
