#!/usr/bin/env bash
# Regenerates analyzer-baseline.json — the committed table of every wire
# send site (crate × function × helper × round scope) that check.sh
# stage 9 diffs against.
#
# Run this when a send site is intentionally added, removed, or moved to
# a different scope, and commit the result TOGETHER with the protocol
# change and an updated cost justification in EXPERIMENTS.md: the whole
# point of the gate is that communication-cost changes are reviewed, not
# silent.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --offline -q -p ca-analyzer -- --deep --write-baseline analyzer-baseline.json
git --no-pager diff --stat -- analyzer-baseline.json || true
echo "update-baseline.sh: wrote analyzer-baseline.json (review the diff before committing)"
