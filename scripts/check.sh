#!/usr/bin/env bash
# Workspace quality gate, in escalating strictness:
#
#   1. rustfmt       — formatting drift
#   2. clippy        — generic Rust lints, warnings denied
#   3. ca-analyzer   — protocol-soundness rules (panic-path, unbounded-alloc,
#                      nondeterminism, wire-cast, trace-discipline,
#                      bounded-channels, unsafe-audit), --deny mode
#   4. cargo test    — unit + property + integration tests, whole workspace
#   5. trace smoke   — a real traced experiment run must produce artifacts
#                      that pass `ca-trace check`, plus the observation-only
#                      guard (tracing leaves Metrics bit-identical)
#   6. engine smoke  — the multi-tenant service: the S1 throughput
#                      experiment must emit its BENCH artifact, and the
#                      closed-loop load generator must sustain real load
#   7. chaos smoke   — crash-fault tolerance of the TCP runtime: an n = 4
#                      cluster with one party crashed mid-protocol must
#                      still decide (deterministic traces), and the R1
#                      resilience experiment must emit its BENCH artifact
#   8. adaptive smoke — the fault-adaptive fast path: the adversarial
#                      conformance suite must pass, and the A1 sweep must
#                      emit its BENCH artifact with the fast path beating
#                      the worst-case protocol at f = 0
#   9. deep analysis  — the semantic workspace passes (wire-taint,
#                      comm-budget, concurrency-discipline) over the whole
#                      workspace, diffed against analyzer-baseline.json;
#                      any new/unmetered send site, tainted allocation, or
#                      lock inversion fails the gate
#  10. async smoke    — the event-driven backend: the async chaos suite
#                      (seeded reorder + mid-protocol crash, byte-identical
#                      reruns) must pass over both the executor and real
#                      TCP, and the AS1 experiment must emit its BENCH
#                      artifact with the async path beating the Δ-mistuned
#                      sync baselines
#  11. kernel smoke   — the flattened hot path: the P1 scaling grid (built
#                      in release; throughput gates are meaningless at -O0)
#                      must emit its BENCH artifact with the blocked RS
#                      kernels differentially equal to the scalar oracle
#                      and ≥ 2× faster on the grid's largest cell
#
# Everything runs offline: external crates are vendored under shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/11] cargo fmt --check"
cargo fmt --all -- --check

echo "==> [2/11] cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> [3/11] ca-analyzer --deny"
cargo run --offline -q -p ca-analyzer -- --deny

echo "==> [4/11] cargo test (workspace)"
cargo test --workspace --offline -q

echo "==> [5/11] trace smoke (artifacts + invariants + NullSink guard)"
artifacts="$(mktemp -d)"
trap 'rm -rf "$artifacts"' EXIT
cargo run --offline -q -p ca-bench --bin experiments -- f3 --quick --artifacts "$artifacts" >/dev/null
test -s "$artifacts/run.jsonl"      || { echo "missing run.jsonl"; exit 1; }
test -s "$artifacts/BENCH_f3.json"  || { echo "missing BENCH_f3.json"; exit 1; }
cargo run --offline -q -p ca-trace --bin ca-trace -- check "$artifacts/run.jsonl"
cargo run --offline -q -p ca-trace --bin ca-trace -- report "$artifacts/run.jsonl" >/dev/null
# NullSink guard: an instrumented fault-free run reports bit-identical Metrics.
cargo test --offline -q -p convex-agreement --test trace_invariants \
    tracing_does_not_perturb_metrics >/dev/null

echo "==> [6/11] engine smoke (S1 artifact + closed-loop load)"
cargo run --offline -q -p ca-bench --bin experiments -- s1 --quick --artifacts "$artifacts" >/dev/null
test -s "$artifacts/BENCH_s1.json"  || { echo "missing BENCH_s1.json"; exit 1; }
cargo run --offline -q -p ca-engine --example closed_loop -- 2 >/dev/null

echo "==> [7/11] chaos smoke (crash-fault tolerance + R1 artifact)"
cargo test --offline -q -p convex-agreement --test chaos >/dev/null
cargo run --offline -q -p ca-bench --bin experiments -- r1 --quick --artifacts "$artifacts" >/dev/null
test -s "$artifacts/BENCH_r1.json"  || { echo "missing BENCH_r1.json"; exit 1; }

echo "==> [8/11] adaptive smoke (conformance suite + A1 fast-path gate)"
cargo test --offline -q -p convex-agreement --test chaos fast_path_conformance >/dev/null
cargo test --offline -q -p convex-agreement --test prop_end_to_end pi_n_adaptive >/dev/null
cargo run --offline -q -p ca-bench --bin experiments -- a1 --quick --artifacts "$artifacts" >/dev/null
test -s "$artifacts/BENCH_a1.json"  || { echo "missing BENCH_a1.json"; exit 1; }
grep -q '"f0_beats_worst_case": true' "$artifacts/BENCH_a1.json" \
    || { echo "BENCH_a1.json: fast path did not beat the worst case at f = 0"; exit 1; }

echo "==> [9/11] deep semantic analysis (baseline-gated, offline)"
cargo run --offline -q -p ca-analyzer -- --deep --deny --baseline analyzer-baseline.json
cargo run --offline -q -p ca-analyzer -- --deep --deny --baseline analyzer-baseline.json \
    --emit json >/dev/null   # JSON emitter stays parseable for CI

echo "==> [10/11] async smoke (chaos suite + AS1 artifact gate)"
cargo test --offline -q -p convex-agreement --test async_chaos >/dev/null
cargo test --offline -q -p ca-runtime --test async_tcp >/dev/null
cargo run --offline -q -p ca-bench --bin experiments -- as1 --quick --artifacts "$artifacts" >/dev/null
test -s "$artifacts/BENCH_as1.json" || { echo "missing BENCH_as1.json"; exit 1; }
grep -q '"as1_async_wins": true' "$artifacts/BENCH_as1.json" \
    || { echo "BENCH_as1.json: async did not beat the mistuned sync baselines"; exit 1; }

echo "==> [11/11] kernel smoke (P1 blocked-vs-scalar gate, release build)"
cargo run --offline -q --release -p ca-bench --bin experiments -- p1 --quick --artifacts "$artifacts" >/dev/null
test -s "$artifacts/BENCH_p1.json" || { echo "missing BENCH_p1.json"; exit 1; }
grep -q '"differential_equal": false' "$artifacts/BENCH_p1.json" \
    && { echo "BENCH_p1.json: blocked and scalar kernels disagreed"; exit 1; }
grep -q '"p1_blocked_beats_scalar": true' "$artifacts/BENCH_p1.json" \
    || { echo "BENCH_p1.json: blocked kernels did not beat the scalar oracle 2x"; exit 1; }

echo "check.sh: all gates passed"
