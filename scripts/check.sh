#!/usr/bin/env bash
# Workspace quality gate, in escalating strictness:
#
#   1. rustfmt       — formatting drift
#   2. clippy        — generic Rust lints, warnings denied
#   3. ca-analyzer   — protocol-soundness rules (panic-path, unbounded-alloc,
#                      nondeterminism, wire-cast, unsafe-audit), --deny mode
#   4. cargo test    — unit + property + integration tests, whole workspace
#
# Everything runs offline: external crates are vendored under shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/4] cargo fmt --check"
cargo fmt --all -- --check

echo "==> [2/4] cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> [3/4] ca-analyzer --deny"
cargo run --offline -q -p ca-analyzer -- --deny

echo "==> [4/4] cargo test (workspace)"
cargo test --workspace --offline -q

echo "check.sh: all gates passed"
