#!/usr/bin/env bash
# Workspace quality gate, in escalating strictness:
#
#   1. rustfmt       — formatting drift
#   2. clippy        — generic Rust lints, warnings denied
#   3. ca-analyzer   — protocol-soundness rules (panic-path, unbounded-alloc,
#                      nondeterminism, wire-cast, trace-discipline,
#                      unsafe-audit), --deny mode
#   4. cargo test    — unit + property + integration tests, whole workspace
#   5. trace smoke   — a real traced experiment run must produce artifacts
#                      that pass `ca-trace check`, plus the observation-only
#                      guard (tracing leaves Metrics bit-identical)
#
# Everything runs offline: external crates are vendored under shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/5] cargo fmt --check"
cargo fmt --all -- --check

echo "==> [2/5] cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> [3/5] ca-analyzer --deny"
cargo run --offline -q -p ca-analyzer -- --deny

echo "==> [4/5] cargo test (workspace)"
cargo test --workspace --offline -q

echo "==> [5/5] trace smoke (artifacts + invariants + NullSink guard)"
artifacts="$(mktemp -d)"
trap 'rm -rf "$artifacts"' EXIT
cargo run --offline -q -p ca-bench --bin experiments -- f3 --quick --artifacts "$artifacts" >/dev/null
test -s "$artifacts/run.jsonl"      || { echo "missing run.jsonl"; exit 1; }
test -s "$artifacts/BENCH_f3.json"  || { echo "missing BENCH_f3.json"; exit 1; }
cargo run --offline -q -p ca-trace --bin ca-trace -- check "$artifacts/run.jsonl"
cargo run --offline -q -p ca-trace --bin ca-trace -- report "$artifacts/run.jsonl" >/dev/null
# NullSink guard: an instrumented fault-free run reports bit-identical Metrics.
cargo test --offline -q -p convex-agreement --test trace_invariants \
    tracing_does_not_perturb_metrics >/dev/null

echo "check.sh: all gates passed"
